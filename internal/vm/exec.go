package vm

import (
	"repro/internal/minipy"
)

// runFrame executes one function (or module) activation: it takes a pooled
// operand stack sized by the code's verified high-water mark and enters the
// dispatch loop. The loop lives in frameLoop so its stack slice is never
// captured by a deferred closure (a deferred capture would force every
// append through a heap cell).
// benchlint:hotpath
// benchlint:allow boxedhot — the stack tier's frame contract is boxed by
// design; the register tier enters through regRunFrame instead
func (in *Interp) runFrame(code *minipy.Code, locals []minipy.Value, cells []*minipy.Cell) (minipy.Value, error) {
	in.depth++
	if in.depth > in.maxDepth {
		in.depth--
		return nil, &RuntimeError{Kind: "RecursionError", Msg: "maximum recursion depth exceeded"}
	}
	defer func() { in.depth-- }()
	if in.tracer != nil {
		in.tracer.OnEnter(code)
		defer in.tracer.OnExit(code)
	}
	v, stack, err := in.frameLoop(code, locals, cells, in.getStack(stackBound(code)))
	in.putStack(stack)
	return v, err
}

// stackBound returns the operand-stack capacity a frame for code needs.
// Verified code carries the exact high-water mark in MaxStack; unverified
// code (RunModule does not demand a prior Verify) gets a conservative
// bound — the sum of every positive net stack effect — so the dispatch
// loop's capacity-guaranteed pushes can never overrun. ForIter is the one
// control op with a positive push (its continue path) and is excluded from
// EffectOf, so it is special-cased.
func stackBound(code *minipy.Code) int {
	if code.MaxStack > 0 || len(code.Ops) == 0 {
		return code.MaxStack
	}
	bound := 0
	for _, ins := range code.Ops {
		if ins.Op == minipy.OpForIter {
			bound++
			continue
		}
		if pops, pushes, ok := minipy.EffectOf(code, ins); ok && pushes > pops {
			bound += pushes - pops
		}
	}
	return bound
}

// failAt decorates a runtime error with the source line of the faulting pc.
func (in *Interp) failAt(code *minipy.Code, pc int, err error) error {
	if re, ok := err.(*RuntimeError); ok && re.Line == 0 {
		re.Line = int(code.Lines[pc])
	}
	return err
}

// frameLoop is the interpreter dispatch loop: every simulated instruction
// passes through here, so it must stay free of allocation-prone stdlib
// calls. All loop invariants (code pools, probe, tracer, cost table, cache
// arrays) are hoisted above the loop; the operand stack is manipulated with
// inline slice operations rather than push/pop closures. It returns the
// (possibly regrown) stack so the caller can pool it.
//
// The simulated counters (steps/instrs/cycles) are accumulated in local
// variables so the hot path runs register-to-register instead of doing
// three pointer-chasing read-modify-writes per opcode. The locals are
// flushed to the Interp fields before — and reloaded after — every call
// that can observe or mutate them: probe and tracer hooks, the abort
// callback, nested calls (OpCall), the JIT back-edge hook, and every helper
// that reaches memAccess while a probe is attached. Counter values at each
// observation point are therefore bit-identical to the unhoisted form.
// benchlint:hotpath
// benchlint:allow boxedhot — the stack tier's operand stack is boxed by design
func (in *Interp) frameLoop(code *minipy.Code, locals []minipy.Value, cells []*minipy.Cell,
	stack []minipy.Value) (minipy.Value, []minipy.Value, error) {
	st := in.state(code)
	var (
		ret      minipy.Value
		errv     error
		pc       int
		ops      = code.Ops
		consts   = code.Consts
		names    = code.Names
		probe    = in.probe
		tracer   = in.tracer
		vtracer  = in.vtracer
		jit      = in.jit
		abortFn  = in.abort
		maxSteps = in.maxSteps
		dispatch = in.cost.DispatchOverhead
		icWarmup = in.icWarmup
		cid      = st.id
		gcache   = st.globals
		acache   = st.attrs
		ic       = st.ic
		// Hoisted simulated counters (see the function comment).
		steps     = in.steps
		instrsTot = in.instrs
		cyclesTot = in.cycles
		// Synthetic frame-local storage base for the cache model.
		frameBase = uint64(0x8000) + uint64(in.depth)*512
	)

	// JIT trace mask for this code object, refreshed on version changes.
	var mask []bool
	var maskVer uint64
	// Program counter of the op being executed, for the post-op value
	// hook (pc itself has already advanced by then). Only maintained when
	// a ValueTracer is attached.
	var opPC int
	if jit != nil {
		mask = jit.compiled[code]
		maskVer = jit.version
	}

	for {
		steps++
		if steps > maxSteps {
			errv = &RuntimeError{Kind: "TimeoutError", Msg: "step budget exhausted"}
			goto done
		}
		if abortFn != nil && steps%abortPollInterval == 0 {
			in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
			if err := abortFn(); err != nil {
				errv = abortErr("%s", err.Error())
				goto done
			}
			steps, instrsTot, cyclesTot = in.steps, in.instrs, in.cycles
		}
		ins := ops[pc]
		op := ins.Op

		// ---- Cost accounting ----
		instrs := uint64(baseInstr[op] + dispatch)
		inTrace := false
		if jit != nil {
			if maskVer != jit.version {
				mask = jit.compiled[code]
				maskVer = jit.version
			}
			if mask != nil && mask[pc] {
				inTrace = true
				instrs /= uint64(in.cost.JITDivisor)
				if instrs == 0 {
					instrs = 1
				}
				jit.OpsInTraces++
			}
		}
		if ic != nil && !inTrace && icSpecializable(op) {
			if c := ic[pc]; c >= icWarmup {
				// Specialized site: the dynamic-lookup work shrinks; the
				// dispatch cost is unchanged.
				instrs = uint64(dispatch) + uint64(baseInstr[op])/uint64(in.icDivisor)
				if instrs == 0 {
					instrs = 1
				}
			} else {
				ic[pc] = c + 1
			}
		}
		instrsTot += instrs
		cyclesTot += instrs
		if probe != nil {
			in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
			stall := probe.OnOp(op, instrs)
			in.stalls += stall
			in.cycles += stall
			instrsTot, cyclesTot = in.instrs, in.cycles
		}
		if tracer != nil {
			in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
			tracer.OnOp(code, pc, op, instrs)
			steps, instrsTot, cyclesTot = in.steps, in.instrs, in.cycles
		}
		if vtracer != nil {
			opPC = pc
		}

		switch op {
		case minipy.OpNop:
			pc++
		case minipy.OpLoadConst:
			n := len(stack)
			stack = stack[:n+1]
			stack[n] = consts[ins.Arg]
			pc++
		case minipy.OpLoadLocal:
			if probe != nil {
				in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
				in.memAccess(frameBase+uint64(ins.Arg)*8, false)
				cyclesTot = in.cycles
			}
			v := locals[ins.Arg]
			if v == nil {
				errv = in.failAt(code, pc, nameErr("local variable '%s' referenced before assignment",
					code.LocalNames[ins.Arg]))
				goto done
			}
			n := len(stack)
			stack = stack[:n+1]
			stack[n] = v
			pc++
		case minipy.OpStoreLocal:
			if probe != nil {
				in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
				in.memAccess(frameBase+uint64(ins.Arg)*8, true)
				cyclesTot = in.cycles
			}
			n := len(stack) - 1
			locals[ins.Arg] = stack[n]
			stack = stack[:n]
			pc++
		case minipy.OpLoadGlobal:
			name := names[ins.Arg]
			if probe != nil {
				in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
				in.memAccess(0x4000+nameHash(name)%1024*8, false)
				cyclesTot = in.cycles
			}
			var v minipy.Value
			if s := &gcache[ins.Arg]; s.ver == in.gver {
				// Inline-cache hit: the namespace is unchanged since this
				// name was last resolved. Host-level only — the simulated
				// cost above is charged identically on hit and miss.
				v = s.val
			} else {
				var ok bool
				v, ok = in.Globals[name]
				if !ok {
					v, ok = in.builtins[name]
					if !ok {
						errv = in.failAt(code, pc, nameErr("name '%s' is not defined", name))
						goto done
					}
				}
				s.ver, s.val = in.gver, v
			}
			m := len(stack)
			stack = stack[:m+1]
			stack[m] = v
			pc++
		case minipy.OpStoreGlobal:
			name := names[ins.Arg]
			if probe != nil {
				in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
				in.memAccess(0x4000+nameHash(name)%1024*8, true)
				cyclesTot = in.cycles
			}
			n := len(stack) - 1
			v := stack[n]
			stack = stack[:n]
			in.Globals[name] = v
			// Any store may shadow a builtin or rebind a cached name, so it
			// starts a new namespace version; the stored name's own slot is
			// refilled immediately (store-through).
			in.gver++
			gcache[ins.Arg] = gslot{ver: in.gver, val: v}
			pc++
		case minipy.OpLoadCell:
			c := cells[ins.Arg]
			if probe != nil {
				in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
				in.memAccess(frameBase+256+uint64(ins.Arg)*8, false)
				cyclesTot = in.cycles
			}
			if c.V == nil {
				errv = in.failAt(code, pc, nameErr("free variable referenced before assignment"))
				goto done
			}
			n := len(stack)
			stack = stack[:n+1]
			stack[n] = c.V
			pc++
		case minipy.OpStoreCell:
			if probe != nil {
				in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
				in.memAccess(frameBase+256+uint64(ins.Arg)*8, true)
				cyclesTot = in.cycles
			}
			n := len(stack) - 1
			cells[ins.Arg].V = stack[n]
			stack = stack[:n]
			pc++
		case minipy.OpPushCell:
			n := len(stack)
			stack = stack[:n+1]
			stack[n] = cells[ins.Arg]
			pc++
		case minipy.OpLoadAttr:
			if probe != nil {
				in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
			}
			n := len(stack) - 1
			var v minipy.Value
			var err error
			if acache != nil {
				v, err = in.getAttrCached(stack[n], names[ins.Arg], &acache[pc])
			} else {
				v, err = in.getAttr(stack[n], names[ins.Arg])
			}
			if probe != nil {
				cyclesTot = in.cycles
			}
			if err != nil {
				errv = in.failAt(code, pc, err)
				goto done
			}
			stack[n] = v
			pc++
		case minipy.OpStoreAttr:
			if probe != nil {
				in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
			}
			n := len(stack) - 2 // stack: ..., target, value
			err := in.setAttr(stack[n], names[ins.Arg], stack[n+1])
			if probe != nil {
				cyclesTot = in.cycles
			}
			if err != nil {
				errv = in.failAt(code, pc, err)
				goto done
			}
			stack = stack[:n]
			pc++
		case minipy.OpBinary:
			n := len(stack) - 2
			bop := minipy.BinOpCode(ins.Arg)
			// int ⊙ int is the dominant binary shape; handle the overflow-free
			// subset inline so the dispatch loop never leaves frameLoop for it.
			// Division, modulo, and power fall through to in.binary (zero and
			// sign handling), as does every mixed-type pair. Host-level only:
			// identical values, no simulated-cost interaction.
			var v minipy.Value
			if x, ok := stack[n].(minipy.Int); ok {
				if y, ok := stack[n+1].(minipy.Int); ok {
					switch bop {
					case minipy.BinAdd:
						v = minipy.IntValue(int64(x + y))
					case minipy.BinSub:
						v = minipy.IntValue(int64(x - y))
					case minipy.BinMul:
						v = minipy.IntValue(int64(x * y))
					case minipy.BinFloorDiv:
						// Non-negative operands only: Go and Python agree
						// there. Negative operands round differently and
						// fall through to minipy.FloorDivInt.
						if x >= 0 && y > 0 {
							v = minipy.IntValue(int64(x / y))
						}
					case minipy.BinMod:
						if x >= 0 && y > 0 {
							v = minipy.IntValue(int64(x % y))
						}
					case minipy.BinLt:
						v = minipy.Bool(x < y)
					case minipy.BinGt:
						v = minipy.Bool(x > y)
					case minipy.BinLe:
						v = minipy.Bool(x <= y)
					case minipy.BinGe:
						v = minipy.Bool(x >= y)
					case minipy.BinEq:
						v = minipy.Bool(x == y)
					case minipy.BinNe:
						v = minipy.Bool(x != y)
					}
				}
			}
			if v == nil {
				var err error
				v, err = in.binary(bop, stack[n], stack[n+1])
				if err != nil {
					errv = in.failAt(code, pc, err)
					goto done
				}
			}
			stack[n] = v
			stack = stack[:n+1]
			pc++
		case minipy.OpUnary:
			n := len(stack) - 1
			v, err := in.unary(minipy.UnOpCode(ins.Arg), stack[n])
			if err != nil {
				errv = in.failAt(code, pc, err)
				goto done
			}
			stack[n] = v
			pc++
		case minipy.OpJump:
			target := int(ins.Arg)
			if jit != nil && target <= pc {
				in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
				pause := jit.onBackEdge(code, int32(pc), ins.Arg)
				if pause > 0 {
					in.cycles += pause
					in.jitPauses += pause
					mask = jit.compiled[code]
					maskVer = jit.version
				}
				cyclesTot = in.cycles
			}
			pc = target
		case minipy.OpJumpIfFalse, minipy.OpJumpIfTrue:
			n := len(stack) - 1
			cond := stack[n].Truth()
			stack = stack[:n]
			taken := (op == minipy.OpJumpIfFalse && !cond) || (op == minipy.OpJumpIfTrue && cond)
			if probe != nil || inTrace {
				in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
				in.branchEvent(code, cid, pc, taken, inTrace)
				cyclesTot = in.cycles
			}
			if taken {
				pc = int(ins.Arg)
			} else {
				pc++
			}
		case minipy.OpJumpIfFalseKeep, minipy.OpJumpIfTrueKeep:
			cond := stack[len(stack)-1].Truth()
			taken := (op == minipy.OpJumpIfFalseKeep && !cond) || (op == minipy.OpJumpIfTrueKeep && cond)
			if probe != nil || inTrace {
				in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
				in.branchEvent(code, cid, pc, taken, inTrace)
				cyclesTot = in.cycles
			}
			if taken {
				pc = int(ins.Arg)
			} else {
				stack = stack[:len(stack)-1]
				pc++
			}
		case minipy.OpCall:
			n := int(ins.Arg)
			base := len(stack) - n - 1
			callee := stack[base]
			// Builtin callees are leaves: they never read the simulated
			// counters and cannot re-enter the dispatch loop, so the
			// counter flush is only needed for frame-entering callees or
			// when a probe can charge stalls inside the callee.
			flushCall := probe != nil
			if !flushCall {
				switch callee.(type) {
				case *minipy.Function, *minipy.BoundMethod, *minipy.Class:
					flushCall = true
				}
			}
			if flushCall {
				in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
			}
			callRet, err := in.call(callee, stack[base+1:])
			if flushCall {
				steps, instrsTot, cyclesTot = in.steps, in.instrs, in.cycles
			}
			if err != nil {
				errv = in.failAt(code, pc, err)
				goto done
			}
			stack[base] = callRet
			stack = stack[:base+1]
			pc++
		case minipy.OpReturn:
			n := len(stack) - 1
			ret = stack[n]
			stack = stack[:n]
			goto done
		case minipy.OpPop:
			stack = stack[:len(stack)-1]
			pc++
		case minipy.OpDup:
			n := len(stack)
			stack = stack[:n+1]
			stack[n] = stack[n-1]
			pc++
		case minipy.OpDup2:
			n := len(stack)
			stack = stack[:n+2]
			stack[n] = stack[n-2]
			stack[n+1] = stack[n-1]
			pc++
		case minipy.OpBuildList:
			n := int(ins.Arg)
			base := len(stack) - n
			l := minipy.NewListFrom(stack[base:], in.alloc(uint64(24+8*n)))
			stack = stack[:base+1]
			stack[base] = l
			pc++
		case minipy.OpBuildTuple:
			n := int(ins.Arg)
			base := len(stack) - n
			t := minipy.NewTupleFrom(stack[base:], in.alloc(uint64(16+8*n)))
			stack = stack[:base+1]
			stack[base] = t
			pc++
		case minipy.OpBuildDict:
			n := int(ins.Arg)
			d := in.newDict()
			base := len(stack) - 2*n
			for i := 0; i < n; i++ {
				kv := stack[base+2*i]
				vv := stack[base+2*i+1]
				k, err := minipy.MakeKey(kv)
				if err != nil {
					errv = in.failAt(code, pc, typeErr("%s", err.Error()))
					goto done
				}
				d.Set(k, kv, vv)
			}
			stack = stack[:base+1]
			stack[base] = d
			pc++
		case minipy.OpBuildClass:
			base := len(stack) - 2*int(ins.Arg) - 2
			cls, err := in.buildClass(stack[base:], int(ins.Arg))
			if err != nil {
				errv = in.failAt(code, pc, err)
				goto done
			}
			stack = stack[:base+1]
			stack[base] = cls
			pc++
		case minipy.OpIndexGet:
			if probe != nil {
				in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
			}
			n := len(stack) - 2
			v, err := in.indexGet(stack[n], stack[n+1])
			if probe != nil {
				cyclesTot = in.cycles
			}
			if err != nil {
				errv = in.failAt(code, pc, err)
				goto done
			}
			stack[n] = v
			stack = stack[:n+1]
			pc++
		case minipy.OpIndexSet:
			if probe != nil {
				in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
			}
			n := len(stack) - 3 // stack: ..., target, index, value
			err := in.indexSet(stack[n], stack[n+1], stack[n+2])
			if probe != nil {
				cyclesTot = in.cycles
			}
			if err != nil {
				errv = in.failAt(code, pc, err)
				goto done
			}
			stack = stack[:n]
			pc++
		case minipy.OpSliceGet:
			n := len(stack) - 3 // stack: ..., target, lo, hi
			v, err := in.sliceGet(stack[n], stack[n+1], stack[n+2])
			if err != nil {
				errv = in.failAt(code, pc, err)
				goto done
			}
			stack[n] = v
			stack = stack[:n+1]
			pc++
		case minipy.OpDelIndex:
			n := len(stack) - 2
			if err := in.delIndex(stack[n], stack[n+1]); err != nil {
				errv = in.failAt(code, pc, err)
				goto done
			}
			stack = stack[:n]
			pc++
		case minipy.OpGetIter:
			n := len(stack) - 1
			it, err := in.getIter(stack[n])
			if err != nil {
				errv = in.failAt(code, pc, err)
				goto done
			}
			stack[n] = it
			pc++
		case minipy.OpForIter:
			it := stack[len(stack)-1].(iterator)
			v, ok := it.next()
			if probe != nil || inTrace {
				in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
				in.branchEvent(code, cid, pc, !ok, inTrace)
				cyclesTot = in.cycles
			}
			if !ok {
				stack = stack[:len(stack)-1]
				pc = int(ins.Arg)
			} else {
				m := len(stack)
				stack = stack[:m+1]
				stack[m] = v
				pc++
			}
		case minipy.OpMakeFunction:
			fnCode := consts[ins.Arg].(*minipy.Code)
			nf := len(fnCode.FreeNames)
			var free []*minipy.Cell
			if nf > 0 {
				free = make([]*minipy.Cell, nf)
				base := len(stack) - nf
				for i := 0; i < nf; i++ {
					free[i] = stack[base+i].(*minipy.Cell)
				}
				stack = stack[:base]
			}
			m := len(stack)
			stack = stack[:m+1]
			stack[m] = &minipy.Function{Code: fnCode, Free: free}
			pc++
		case minipy.OpUnpack:
			n := int(ins.Arg)
			top := len(stack) - 1
			seq := stack[top]
			var items []minipy.Value
			switch s := seq.(type) {
			case *minipy.Tuple:
				items = s.Items
			case *minipy.List:
				items = s.Items
			default:
				errv = in.failAt(code, pc, typeErr("cannot unpack non-sequence %s", seq.TypeName()))
				goto done
			}
			if len(items) != n {
				errv = in.failAt(code, pc, valueErr("expected %d values to unpack, got %d", n, len(items)))
				goto done
			}
			stack = stack[:top+n]
			for i := 0; i < n; i++ {
				stack[top+i] = items[n-1-i]
			}
			pc++
		case minipy.OpLoadLocalPair:
			slotA := int(ins.Arg) & 0xFFF
			slotB := int(ins.Arg) >> 12
			if probe != nil {
				in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
				in.memAccess(frameBase+uint64(slotA)*8, false)
				in.memAccess(frameBase+uint64(slotB)*8, false)
				cyclesTot = in.cycles
			}
			va := locals[slotA]
			if va == nil {
				errv = in.failAt(code, pc, nameErr("local variable '%s' referenced before assignment",
					code.LocalNames[slotA]))
				goto done
			}
			vb := locals[slotB]
			if vb == nil {
				errv = in.failAt(code, pc, nameErr("local variable '%s' referenced before assignment",
					code.LocalNames[slotB]))
				goto done
			}
			n := len(stack)
			stack = stack[:n+2]
			stack[n] = va
			stack[n+1] = vb
			pc++
		case minipy.OpLoadLocalConst:
			slot := int(ins.Arg) & 0xFFF
			if probe != nil {
				in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
				in.memAccess(frameBase+uint64(slot)*8, false)
				cyclesTot = in.cycles
			}
			v := locals[slot]
			if v == nil {
				errv = in.failAt(code, pc, nameErr("local variable '%s' referenced before assignment",
					code.LocalNames[slot]))
				goto done
			}
			n := len(stack)
			stack = stack[:n+2]
			stack[n] = v
			stack[n+1] = consts[ins.Arg>>12]
			pc++
		case minipy.OpBinaryJumpIfFalse:
			n := len(stack) - 2
			bop := minipy.BinOpCode(ins.Arg & 0xF)
			// Same int ⊙ int inline subset as OpBinary; everything else
			// (division, power, mixed types) goes through in.binary.
			var v minipy.Value
			if x, ok := stack[n].(minipy.Int); ok {
				if y, ok := stack[n+1].(minipy.Int); ok {
					switch bop {
					case minipy.BinAdd:
						v = minipy.IntValue(int64(x + y))
					case minipy.BinSub:
						v = minipy.IntValue(int64(x - y))
					case minipy.BinMul:
						v = minipy.IntValue(int64(x * y))
					case minipy.BinLt:
						v = minipy.Bool(x < y)
					case minipy.BinGt:
						v = minipy.Bool(x > y)
					case minipy.BinLe:
						v = minipy.Bool(x <= y)
					case minipy.BinGe:
						v = minipy.Bool(x >= y)
					case minipy.BinEq:
						v = minipy.Bool(x == y)
					case minipy.BinNe:
						v = minipy.Bool(x != y)
					}
				}
			}
			if v == nil {
				var err error
				v, err = in.binary(bop, stack[n], stack[n+1])
				if err != nil {
					errv = in.failAt(code, pc, err)
					goto done
				}
			}
			stack = stack[:n]
			taken := !v.Truth()
			if probe != nil || inTrace {
				in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
				in.branchEvent(code, cid, pc, taken, inTrace)
				cyclesTot = in.cycles
			}
			if taken {
				pc = int(ins.Arg >> 4)
			} else {
				pc++
			}
		default:
			errv = in.failAt(code, pc, &RuntimeError{Kind: "SystemError", Msg: "unknown opcode " + op.String()})
			goto done
		}

		// Post-op value hook: the op at opPC completed without raising
		// (raising paths goto done above and never reach here), so the
		// certificate's claim about its result — if any — is now checkable
		// against the live stack.
		if vtracer != nil {
			in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
			vtracer.OnValue(code, opPC, op, stack)
			steps, instrsTot, cyclesTot = in.steps, in.instrs, in.cycles
		}
	}

done:
	in.steps, in.instrs, in.cycles = steps, instrsTot, cyclesTot
	return ret, stack, errv
}

// buildClass constructs a class object for OpBuildClass. Split out of the
// dispatch loop because it allocates a methods map (cold: runs once per
// class statement). seg is the operand segment [name, base, (name, value)*n].
func (in *Interp) buildClass(seg []minipy.Value, n int) (minipy.Value, error) {
	methods := map[string]minipy.Value{}
	// Match the historical pop order (top pair first): on duplicate method
	// names the bottom-most pair wins.
	for i := n - 1; i >= 0; i-- {
		nameV := seg[2+2*i]
		v := seg[3+2*i]
		methods[string(nameV.(minipy.Str))] = v
	}
	baseV := seg[1]
	className := string(seg[0].(minipy.Str))
	var baseClass *minipy.Class
	if bc, ok := baseV.(*minipy.Class); ok {
		baseClass = bc
	} else if _, isNone := baseV.(minipy.NoneType); !isNone {
		return nil, typeErr("class base must be a class, not '%s'", baseV.TypeName())
	}
	return &minipy.Class{Name: className, Base: baseClass, Methods: methods, Addr: in.alloc(256)}, nil
}

// branchEvent reports a resolved conditional branch to the probe and, when
// inside a compiled trace, to the JIT guard model. The dispatch loop guards
// the call so plain-interpreter branches skip it entirely.
// benchlint:hotpath
func (in *Interp) branchEvent(code *minipy.Code, cid uint64, pc int, taken, inTrace bool) {
	if in.probe != nil {
		stall := in.probe.OnBranch(cid|uint64(pc), taken)
		in.stalls += stall
		in.cycles += stall
	}
	if inTrace && in.jit != nil {
		pause := in.jit.onGuard(code, int32(pc), taken)
		if pause > 0 {
			in.cycles += pause
			in.jitPauses += pause
		}
	}
}

// nameHash spreads global-name accesses over the synthetic globals region.
// Runs on every global load/store.
// benchlint:hotpath
func nameHash(s string) uint64 {
	var h uint64 = 1469598103934665603
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}
