package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/methodology"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// warmupExemplars picks three representative benchmarks for warmup plots:
// a numeric loop kernel, an object workload, and the guard-hostile one.
func (e *Engine) warmupExemplars() []workloads.Benchmark {
	want := []string{"nbody", "richards", "branchy"}
	var out []workloads.Benchmark
	for _, name := range want {
		for _, b := range e.cfg.Benchmarks {
			if b.Name == name {
				out = append(out, b)
			}
		}
	}
	if len(out) == 0 {
		// Restricted suite (tests): use whatever is configured, up to 3.
		out = e.cfg.Benchmarks
		if len(out) > 3 {
			out = out[:3]
		}
	}
	return out
}

// Figure1 — warmup curves: per-iteration time (normalized to the
// interpreter's steady mean) for interpreter vs JIT.
func (e *Engine) Figure1() (*report.Figure, error) {
	f := report.NewFigure("Figure 1: warmup curves (per-iteration time, normalized)",
		"iteration", "time / interp steady mean")
	for _, b := range e.warmupExemplars() {
		pi, err := e.baseProfile(b, vm.ModeInterp, e.cfg.WarmupIterations)
		if err != nil {
			return nil, err
		}
		pj, err := e.baseProfile(b, vm.ModeJIT, e.cfg.WarmupIterations)
		if err != nil {
			return nil, err
		}
		norm := stats.Mean(pi[len(pi)/2:])
		f.Add(b.Name+"/interp", scaleSeries(pi, 1/norm))
		f.Add(b.Name+"/jit", scaleSeries(pj, 1/norm))
	}
	f.Caption = "JIT series start at interpreter-level cost, pay compile pauses, then drop below 1; interpreter series stay flat."
	return f, nil
}

func scaleSeries(xs []float64, k float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x * k
	}
	return out
}

// Figure2 — run-to-run distribution: sorted invocation means normalized to
// their median, one series per benchmark (a text violin plot).
func (e *Engine) Figure2() (*report.Figure, error) {
	f := report.NewFigure("Figure 2: run-to-run distribution of invocation means",
		"invocation (sorted)", "time / median")
	invocations := e.cfg.Invocations * 2
	for _, b := range e.cfg.Benchmarks {
		res, err := e.run(b, vm.ModeInterp, invocations, e.cfg.Iterations/2, false)
		if err != nil {
			return nil, err
		}
		means := res.Hierarchical().InvocationMeans()
		med := stats.Median(means)
		sort.Float64s(means)
		f.Add(b.Name, scaleSeries(means, 1/med))
	}
	f.Caption = fmt.Sprintf("%d invocations per benchmark under the default noise model; spread reflects the invocation-level random effect plus spikes.", invocations)
	return f, nil
}

// Figure3 — JIT speedup over the interpreter with rigorous 95% CIs, plus
// the geometric mean.
func (e *Engine) Figure3() (*report.Table, error) {
	t := report.NewTable("Figure 3: JIT speedup over interpreter (rigorous, 95% CI)",
		"benchmark", "speedup", "CI lo", "CI hi", "verdict")
	results, geomean, err := e.CompareEngines()
	if err != nil {
		return nil, err
	}
	for _, r := range results {
		t.AddRow(r.Benchmark, r.Speedup, r.CI.Lo, r.CI.Hi, r.Verdict.String())
	}
	t.AddRow("GEOMEAN", geomean, "", "", "")
	t.Caption = "Hierarchical bootstrap over invocations after changepoint warmup removal; verdict requires the CI to exclude 1."
	return t, nil
}

// Figure4 — CI half-width convergence: relative half-width of the rigorous
// speedup CI versus the number of invocations.
func (e *Engine) Figure4() (*report.Figure, error) {
	f := report.NewFigure("Figure 4: CI half-width vs invocations",
		"invocations", "relative CI half-width %")
	counts := []int{2, 3, 4, 6, 8, 12, 16, 24, 32, 40}
	rig := methodology.Rigorous{Confidence: e.cfg.Confidence, Seed: e.cfg.Seed, Resamples: 600}
	for _, b := range e.warmupExemplars() {
		gi, gj, err := e.generatorPair(b, e.cfg.Iterations)
		if err != nil {
			return nil, err
		}
		xs := make([]float64, 0, len(counts))
		ys := make([]float64, 0, len(counts))
		const reps = 5
		for _, n := range counts {
			sum := 0.0
			for r := 0; r < reps; r++ {
				seed := e.cfg.Seed + uint64(1000*n+r)
				hsA := gi.Sample(seed, n, e.cfg.Iterations)
				hsB := gj.Sample(seed^0xABCD, n, e.cfg.Iterations)
				cmp := rig.Compare(hsA, hsB)
				sum += cmp.CI.RelHalfWidth()
			}
			xs = append(xs, float64(n))
			ys = append(ys, 100*sum/reps)
		}
		f.AddXY(b.Name, xs, ys)
	}
	f.Caption = "Half-width shrinks ~1/sqrt(n) with invocations; mean of 5 synthetic experiments per point."
	return f, nil
}

// Figure5 — effect of warmup handling on the reported speedup: include all
// iterations, drop a fixed prefix, or detect the steady state.
func (e *Engine) Figure5() (*report.Table, error) {
	t := report.NewTable("Figure 5: warmup handling vs reported JIT speedup",
		"benchmark", "include-all", "drop-5", "detected", "true steady")
	for _, b := range e.cfg.Benchmarks {
		ri, err := e.run(b, vm.ModeInterp, e.cfg.Invocations, e.cfg.WarmupIterations, false)
		if err != nil {
			return nil, err
		}
		rj, err := e.run(b, vm.ModeJIT, e.cfg.Invocations, e.cfg.WarmupIterations, false)
		if err != nil {
			return nil, err
		}
		all := stats.Mean(ri.Hierarchical().Flatten()) / stats.Mean(rj.Hierarchical().Flatten())
		drop5 := stats.Mean(ri.HierarchicalFrom(5).Flatten()) / stats.Mean(rj.HierarchicalFrom(5).Flatten())
		rig := methodology.Rigorous{Confidence: e.cfg.Confidence, Seed: e.cfg.Seed, Resamples: 400}
		det := rig.Compare(ri.Hierarchical(), rj.Hierarchical()).Speedup
		// Ground truth from noise-free steady tails.
		pi, err := e.baseProfile(b, vm.ModeInterp, e.cfg.WarmupIterations)
		if err != nil {
			return nil, err
		}
		pj, err := e.baseProfile(b, vm.ModeJIT, e.cfg.WarmupIterations)
		if err != nil {
			return nil, err
		}
		truth := methodology.TrueSpeedup(pi, pj)
		t.AddRow(b.Name, all, drop5, det, truth)
	}
	t.Caption = "Including warmup understates JIT speedups; changepoint detection tracks the noise-free steady-state truth."
	return t, nil
}

// Figure6 — top-down bound breakdown per benchmark (interpreter).
func (e *Engine) Figure6() (*report.Figure, error) {
	f := report.NewFigure("Figure 6: top-down breakdown (interpreter)",
		"benchmark index", "fraction of cycles")
	var retiring, frontend, badspec, backend []float64
	var names []string
	for _, b := range e.cfg.Benchmarks {
		res, err := e.run(b, vm.ModeInterp, 1, 3, true)
		if err != nil {
			return nil, err
		}
		s := res.Invocations[0].Counters
		retiring = append(retiring, s.Retiring)
		frontend = append(frontend, s.FrontendBound)
		badspec = append(badspec, s.BadSpecBound)
		backend = append(backend, s.BackendBound)
		names = append(names, b.Name)
	}
	f.Add("retiring", retiring)
	f.Add("frontend-bound", frontend)
	f.Add("bad-speculation", badspec)
	f.Add("backend-bound", backend)
	f.Caption = "Benchmarks in suite order: " + joinNames(names)
	return f, nil
}

func joinNames(names []string) string {
	out := ""
	for i, n := range names {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%d=%s", i, n)
	}
	return out
}

// Figure7 — variance decomposition: fraction of grand-mean variance coming
// from the invocation level, per benchmark × engine.
func (e *Engine) Figure7() (*report.Table, error) {
	t := report.NewTable("Figure 7: variance decomposition (between-invocation fraction)",
		"benchmark", "engine", "between%", "within%", "CoV inv%", "CoV iter%")
	for _, b := range e.cfg.Benchmarks {
		for _, mode := range []vm.Mode{vm.ModeInterp, vm.ModeJIT} {
			res, err := e.run(b, mode, e.cfg.Invocations, e.cfg.Iterations, false)
			if err != nil {
				return nil, err
			}
			hs := res.HierarchicalFrom(e.cfg.Iterations / 3) // steady part
			vd := stats.DecomposeVariance(hs)
			bf := vd.BetweenFraction()
			covInv := 0.0
			if vd.GrandMean > 0 {
				covInv = sqrt(vd.BetweenVar) / vd.GrandMean
			}
			covIter := 0.0
			if vd.GrandMean > 0 {
				covIter = sqrt(vd.WithinVar) / vd.GrandMean
			}
			t.AddRow(b.Name, mode.String(), 100*bf, 100*(1-bf),
				100*covInv, 100*covIter)
		}
	}
	t.Caption = "Kalibera–Jones two-level decomposition on the steady two-thirds of each invocation."
	return t, nil
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}

// Figure8 — probability of a misleading conclusion versus the true effect
// size, per methodology.
func (e *Engine) Figure8() (*report.Figure, error) {
	f := report.NewFigure("Figure 8: P(misleading or missed) vs true effect size",
		"true speedup effect %", "wrong-conclusion rate %")
	// Use a flat numeric profile as the baseline workload.
	b := e.cfg.Benchmarks[0]
	for _, cand := range e.cfg.Benchmarks {
		if cand.Name == "nbody" {
			b = cand
		}
	}
	gi, _, err := e.generatorPair(b, e.cfg.Iterations)
	if err != nil {
		return nil, err
	}
	effects := []float64{0, 0.005, 0.01, 0.02, 0.05, 0.10, 0.20, 0.50}
	trials := e.cfg.Trials / 2
	if trials < 20 {
		trials = 20
	}
	for _, m := range methodology.All(e.cfg.Seed) {
		xs := make([]float64, 0, len(effects))
		ys := make([]float64, 0, len(effects))
		for _, eff := range effects {
			treatment := gi.Scaled(1 + eff)
			er := methodology.EvaluateMethodology(m, gi, treatment,
				e.cfg.Invocations, e.cfg.Iterations, trials, 0.01,
				e.cfg.Seed+uint64(eff*1e4))
			wrong := float64(er.Misleading+er.Missed) / float64(er.Trials)
			xs = append(xs, 100*eff)
			ys = append(ys, 100*wrong)
		}
		f.AddXY(m.Name(), xs, ys)
	}
	f.Caption = fmt.Sprintf("Synthetic treatments scaled from %s's interpreter profile; %d trials per point; equivalence band ±1%%.",
		b.Name, trials)
	return f, nil
}
