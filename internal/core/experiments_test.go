package core

import (
	"strconv"
	"strings"
	"testing"

	"repro/internal/report"
)

// parseF pulls a float out of a rendered table cell.
func parseF(t *testing.T, cell string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
	if err != nil {
		t.Fatalf("cell %q is not numeric: %v", cell, err)
	}
	return v
}

func TestTable1Structure(t *testing.T) {
	e := New(fastConfig())
	tbl, err := e.Table1()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(e.Config().Benchmarks) {
		t.Fatalf("rows %d, want %d", len(tbl.Rows), len(e.Config().Benchmarks))
	}
	for _, row := range tbl.Rows {
		// Mix percentages must sum to <= 100 (Other is not shown).
		sum := 0.0
		for _, c := range row[4:] {
			sum += parseF(t, c)
		}
		if sum < 50 || sum > 100.5 {
			t.Errorf("%s: mix sums to %v", row[0], sum)
		}
		ops := parseF(t, row[2])
		instr := parseF(t, row[3])
		if instr <= ops {
			t.Errorf("%s: instructions (%v) must exceed ops (%v)", row[0], instr, ops)
		}
	}
}

func TestTable2Structure(t *testing.T) {
	e := New(fastConfig())
	tbl, err := e.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2*len(e.Config().Benchmarks) {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if mean := parseF(t, row[2]); mean <= 0 {
			t.Errorf("%s/%s: non-positive mean", row[0], row[1])
		}
		if cov := parseF(t, row[3]); cov <= 0 || cov > 50 {
			t.Errorf("%s/%s: CoV %v%% out of range", row[0], row[1], cov)
		}
	}
}

func TestTable5Structure(t *testing.T) {
	e := New(fastConfig())
	tbl, err := e.Table5()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		ipc := parseF(t, row[1])
		if ipc <= 0 || ipc > 1 {
			t.Errorf("%s: IPC %v out of (0, 1]", row[0], ipc)
		}
		if mpki := parseF(t, row[2]); mpki < 0 {
			t.Errorf("%s: negative MPKI", row[0])
		}
	}
}

func TestFigure3JITWinsOnLoopsLosesNowhereBig(t *testing.T) {
	e := New(fastConfig())
	tbl, err := e.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		if row[0] == "GEOMEAN" {
			if g := parseF(t, row[1]); g < 1 {
				t.Errorf("geomean %v < 1", g)
			}
			continue
		}
		sp := parseF(t, row[1])
		if sp < 0.8 {
			t.Errorf("%s: JIT loses by %vx — the engines should never regress that hard", row[0], sp)
		}
		lo, hi := parseF(t, row[2]), parseF(t, row[3])
		if lo > hi || sp < lo-0.2 || sp > hi+0.2 {
			t.Errorf("%s: speedup %v outside CI [%v, %v]", row[0], sp, lo, hi)
		}
	}
}

func TestFigure6FractionsSumToOne(t *testing.T) {
	e := New(fastConfig())
	fig, err := e.Figure6()
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 {
		t.Fatalf("series %d", len(fig.Series))
	}
	n := len(fig.Series[0].Y)
	for i := 0; i < n; i++ {
		sum := 0.0
		for _, s := range fig.Series {
			sum += s.Y[i]
		}
		if sum < 0.999 || sum > 1.001 {
			t.Errorf("benchmark %d: top-down fractions sum to %v", i, sum)
		}
	}
}

func TestFigure4HalfWidthShrinks(t *testing.T) {
	e := New(fastConfig())
	fig, err := e.Figure4()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range fig.Series {
		first, last := s.Y[0], s.Y[len(s.Y)-1]
		if last >= first {
			t.Errorf("%s: half-width did not shrink: %v -> %v", s.Label, first, last)
		}
		// √(n_max/n_min) = √20 ≈ 4.5; demand at least a 2x shrink.
		if first/last < 2 {
			t.Errorf("%s: shrink factor %v too small", s.Label, first/last)
		}
	}
}

func TestAblation3FlattenedUndercovers(t *testing.T) {
	cfg := fastConfig()
	cfg.Trials = 80
	e := New(cfg)
	tbl, err := e.AblationCIMethod()
	if err != nil {
		t.Fatal(err)
	}
	var flattened, kj float64
	for _, row := range tbl.Rows {
		switch {
		case strings.HasPrefix(row[0], "flattened"):
			flattened = parseF(t, row[1])
		case strings.HasPrefix(row[0], "invocation-means t"):
			kj = parseF(t, row[1])
		}
	}
	if flattened >= 75 {
		t.Errorf("flattened coverage %v%% — should badly undercover", flattened)
	}
	if kj < 88 || kj > 100 {
		t.Errorf("KJ coverage %v%% — should be near nominal", kj)
	}
}

func TestAblation5NoiseOrdering(t *testing.T) {
	cfg := fastConfig()
	e := New(cfg)
	tbl, err := e.AblationNoiseModel()
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 3 {
		t.Fatalf("rows %d", len(tbl.Rows))
	}
	quiet := parseF(t, tbl.Rows[0][1])
	noisy := parseF(t, tbl.Rows[2][1])
	if quiet > noisy {
		t.Errorf("quiet machine needed more invocations (%v) than noisy (%v)", quiet, noisy)
	}
}

func TestTableCaptionsPresent(t *testing.T) {
	e := New(fastConfig())
	for _, id := range []string{"T1", "T2", "T4", "T5"} {
		out, err := e.Experiment(id)
		if err != nil {
			t.Fatal(err)
		}
		tbl, ok := out.(*report.Table)
		if !ok {
			t.Fatalf("%s: not a table", id)
		}
		if tbl.Caption == "" {
			t.Errorf("%s: missing caption", id)
		}
	}
}
