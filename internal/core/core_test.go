package core

import (
	"strings"
	"testing"

	"repro/internal/workloads"
)

// fastConfig returns a configuration small enough for unit tests but large
// enough to exercise every code path.
func fastConfig() Config {
	suite := workloads.Suite()
	small := []workloads.Benchmark{}
	for _, b := range suite {
		switch b.Name {
		case "fib", "nbody", "branchy", "dictstress":
			small = append(small, b)
		}
	}
	return Config{
		Seed:             7,
		Invocations:      4,
		Iterations:       10,
		WarmupIterations: 24,
		Trials:           40,
		Benchmarks:       small,
	}
}

func TestAllExperimentsProduceOutput(t *testing.T) {
	e := New(fastConfig())
	for _, id := range ExperimentIDs() {
		out, err := e.Experiment(id)
		if err != nil {
			t.Fatalf("experiment %s: %v", id, err)
		}
		s := out.String()
		if len(s) < 40 {
			t.Errorf("experiment %s: suspiciously short output:\n%s", id, s)
		}
		if !strings.Contains(s, "==") {
			t.Errorf("experiment %s: missing title:\n%s", id, s)
		}
	}
}

func TestUnknownExperiment(t *testing.T) {
	e := New(fastConfig())
	if _, err := e.Experiment("T99"); err == nil {
		t.Fatal("expected error for unknown experiment id")
	}
}

func TestCompareEnginesShape(t *testing.T) {
	e := New(fastConfig())
	results, geomean, err := e.CompareEngines()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(e.Config().Benchmarks) {
		t.Fatalf("got %d results, want %d", len(results), len(e.Config().Benchmarks))
	}
	if geomean <= 0 {
		t.Fatalf("geomean %v not positive", geomean)
	}
	// The JIT must win on the numeric hot-loop benchmark.
	for _, r := range results {
		if r.Benchmark == "nbody" && r.Speedup <= 1 {
			t.Errorf("nbody: expected JIT speedup > 1, got %v", r.Speedup)
		}
		if r.CI.Lo > r.CI.Hi {
			t.Errorf("%s: inverted CI [%v, %v]", r.Benchmark, r.CI.Lo, r.CI.Hi)
		}
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	a := New(fastConfig())
	b := New(fastConfig())
	for _, id := range []string{"T2", "F3"} {
		outA, err := a.Experiment(id)
		if err != nil {
			t.Fatal(err)
		}
		outB, err := b.Experiment(id)
		if err != nil {
			t.Fatal(err)
		}
		if outA.String() != outB.String() {
			t.Errorf("experiment %s not deterministic:\n--- a ---\n%s\n--- b ---\n%s",
				id, outA, outB)
		}
	}
}
