// Package core is the public face of the reproduction: it wires the MiniPy
// engines, the noise model, the harness, the statistics layer, and the
// methodology package into the experiments of the paper's evaluation
// (tables T1–T5, figures F1–F8, plus ablations A1–A9). Each experiment
// method returns a report.Table or report.Figure whose text rendering is
// what EXPERIMENTS.md records.
package core

import (
	"fmt"

	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/methodology"
	"repro/internal/noise"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// Config scales the experiments. The zero value selects the full published
// configuration; tests shrink it for speed.
type Config struct {
	// Seed drives every stochastic component. Default 42.
	Seed uint64
	// Invocations and Iterations set the default experiment design.
	// Defaults: 10 × 30.
	Invocations int
	Iterations  int
	// WarmupIterations is the iteration count used by warmup-focused
	// experiments (T3, F1). Default 60.
	WarmupIterations int
	// Trials is the synthetic-trial count for methodology-error experiments
	// (T4, F8). Default 200.
	Trials int
	// Noise selects the simulated machine. Default noise.Default().
	Noise noise.Params
	// Confidence for all intervals. Default 0.95.
	Confidence float64
	// Benchmarks restricts the suite (nil = full suite).
	Benchmarks []workloads.Benchmark

	// Supervision policy: when any of these is set, experiments run under
	// the fault-tolerant harness.Supervisor instead of the bare Runner.

	// Retries is the per-invocation retry budget.
	Retries int
	// Quorum is the minimum successful invocations per experiment
	// (0 = all must succeed).
	Quorum int
	// Faults is the injected fault model (zero = none).
	Faults faults.Params
	// FaultSeed seeds the fault schedule (0 = the experiment seed).
	FaultSeed uint64
	// CheckpointDir, when set, persists per-experiment progress there (as
	// crash-safe write-ahead journals) so interrupted runs resume without
	// re-running completed invocations.
	CheckpointDir string
	// Isolation shells invocation attempts out to watchdogged worker
	// subprocesses (zero value = in-process execution).
	Isolation harness.IsolationOptions

	// Workers > 1 fans invocations out across that many shards. The sample
	// set is identical to the sequential run by construction (see
	// harness.RunParallel); only wall time changes.
	Workers int
	// ParallelPolicy governs the interference guard when Workers > 1
	// (guard/fallback/force; zero value = guard).
	ParallelPolicy harness.ParallelPolicy
}

// Supervised reports whether any supervision policy is configured.
func (c Config) Supervised() bool {
	return c.Retries > 0 || c.Quorum > 0 || c.Faults.Enabled() ||
		c.CheckpointDir != "" || c.Isolation.Enabled
}

func (c Config) withDefaults() Config {
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Invocations == 0 {
		c.Invocations = 10
	}
	if c.Iterations == 0 {
		c.Iterations = 30
	}
	if c.WarmupIterations == 0 {
		c.WarmupIterations = 60
	}
	if c.Trials == 0 {
		c.Trials = 200
	}
	if c.Noise == (noise.Params{}) {
		c.Noise = noise.Default()
	}
	if c.Confidence == 0 {
		c.Confidence = 0.95
	}
	if c.Benchmarks == nil {
		c.Benchmarks = workloads.Suite()
	}
	return c
}

// Engine runs experiments. It caches compiled workloads and noise-free base
// profiles, so regenerating several tables shares the expensive simulation.
type Engine struct {
	cfg      Config
	runner   *harness.Runner
	profiles map[string][]float64 // key: bench/mode
}

// New creates an experiment engine.
func New(cfg Config) *Engine {
	return &Engine{
		cfg:      cfg.withDefaults(),
		runner:   harness.NewRunner(),
		profiles: map[string][]float64{},
	}
}

// Config returns the resolved configuration.
func (e *Engine) Config() Config { return e.cfg }

// run executes one benchmark × engine experiment with the configured noise,
// under the fault-tolerant supervisor when a supervision policy is set.
func (e *Engine) run(b workloads.Benchmark, mode vm.Mode, inv, iter int, counters bool) (*harness.Result, error) {
	opts := harness.Options{
		Mode:         mode,
		Invocations:  inv,
		Iterations:   iter,
		Seed:         e.cfg.Seed ^ benchSeed(b.Name, mode),
		Noise:        e.cfg.Noise,
		WithCounters: counters,
	}
	po := e.parallelOptions()
	if e.cfg.Supervised() {
		return e.supervisorFor(b.Name, mode).RunParallel(b, opts, po)
	}
	return e.runner.RunParallel(b, opts, po)
}

// parallelOptions maps the config's parallelism knobs onto the harness
// (Workers <= 1 yields options that select the sequential path).
func (e *Engine) parallelOptions() harness.ParallelOptions {
	return harness.ParallelOptions{Workers: e.cfg.Workers, Policy: e.cfg.ParallelPolicy}
}

// supervisorFor builds the configured supervisor for one experiment,
// wiring its checkpoint file when CheckpointDir is set.
func (e *Engine) supervisorFor(bench string, mode vm.Mode) *harness.Supervisor {
	so := harness.SupervisorOptions{
		MaxRetries: e.cfg.Retries,
		Quorum:     e.cfg.Quorum,
		Faults:     e.cfg.Faults,
		FaultSeed:  e.cfg.FaultSeed,
		Isolation:  e.cfg.Isolation,
	}
	if e.cfg.CheckpointDir != "" {
		so.Checkpoint = harness.JournalCheckpointFor(e.cfg.CheckpointDir, bench, mode)
	}
	return harness.NewSupervisor(e.runner, so)
}

// baseProfile returns the noise-free per-iteration base times of one
// invocation (the engine's deterministic warmup shape), cached.
func (e *Engine) baseProfile(b workloads.Benchmark, mode vm.Mode, iterations int) ([]float64, error) {
	key := fmt.Sprintf("%s/%s/%d", b.Name, mode, iterations)
	if p, ok := e.profiles[key]; ok {
		return p, nil
	}
	res, err := e.runner.Run(b, harness.Options{
		Mode:        mode,
		Invocations: 1,
		Iterations:  iterations,
		Noise:       noise.None(),
	})
	if err != nil {
		return nil, err
	}
	p := res.Invocations[0].TimesSec
	e.profiles[key] = p
	return p, nil
}

// generatorPair builds baseline (interp) and treatment (jit) trial
// generators for a benchmark from its noise-free profiles.
func (e *Engine) generatorPair(b workloads.Benchmark, iterations int) (baseI, baseJ methodology.TrialGenerator, err error) {
	pi, err := e.baseProfile(b, vm.ModeInterp, iterations)
	if err != nil {
		return baseI, baseJ, err
	}
	pj, err := e.baseProfile(b, vm.ModeJIT, iterations)
	if err != nil {
		return baseI, baseJ, err
	}
	return methodology.TrialGenerator{Base: pi, Noise: e.cfg.Noise},
		methodology.TrialGenerator{Base: pj, Noise: e.cfg.Noise}, nil
}

// benchSeed derives a per-(benchmark, mode) seed offset so experiments do
// not share noise streams.
func benchSeed(name string, mode vm.Mode) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h ^ uint64(mode+1)<<32
}

// Experiment runs an experiment by id ("T1".."T5", "F1".."F8", "A1".."A9")
// and returns its rendered report.
func (e *Engine) Experiment(id string) (fmt.Stringer, error) {
	switch id {
	case "T1":
		return e.Table1()
	case "T2":
		return e.Table2()
	case "T3":
		return e.Table3()
	case "T4":
		return e.Table4()
	case "T5":
		return e.Table5()
	case "F1":
		return e.Figure1()
	case "F2":
		return e.Figure2()
	case "F3":
		return e.Figure3()
	case "F4":
		return e.Figure4()
	case "F5":
		return e.Figure5()
	case "F6":
		return e.Figure6()
	case "F7":
		return e.Figure7()
	case "F8":
		return e.Figure8()
	case "A1":
		return e.AblationDispatch()
	case "A2":
		return e.AblationJITThreshold()
	case "A3":
		return e.AblationCIMethod()
	case "A4":
		return e.AblationChangepoint()
	case "A5":
		return e.AblationNoiseModel()
	case "A6":
		return e.AblationInlineCache()
	case "A7":
		return e.AblationSuperinstructions()
	case "A8":
		return e.AblationFactGates()
	case "A9":
		return e.AblationRegisterElision()
	}
	return nil, fmt.Errorf("core: unknown experiment %q", id)
}

// ExperimentIDs lists every experiment id in canonical order.
func ExperimentIDs() []string {
	return []string{"T1", "T2", "T3", "T4", "T5",
		"F1", "F2", "F3", "F4", "F5", "F6", "F7", "F8",
		"A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8", "A9"}
}

// SpeedupResult is one benchmark's rigorous interp-vs-jit comparison,
// exposed for the examples and CLI.
type SpeedupResult struct {
	Benchmark string
	Speedup   float64
	CI        stats.Interval
	Verdict   methodology.Verdict
	// Degradation is a human-readable account of lost work under
	// supervision ("" when both arms ran clean).
	Degradation string
}

// CompareEngines runs the rigorous methodology on every configured
// benchmark (interpreter as baseline, JIT as treatment) and returns
// per-benchmark speedups plus the geometric mean.
func (e *Engine) CompareEngines() ([]SpeedupResult, float64, error) {
	rig := methodology.Rigorous{Confidence: e.cfg.Confidence, Seed: e.cfg.Seed}
	var out []SpeedupResult
	var speedups []float64
	for _, b := range e.cfg.Benchmarks {
		ri, rj, err := e.runPair(b)
		if err != nil {
			return nil, 0, err
		}
		cmp := rig.Compare(ri.Hierarchical(), rj.Hierarchical())
		out = append(out, SpeedupResult{
			Benchmark:   b.Name,
			Speedup:     cmp.Speedup,
			CI:          cmp.CI,
			Verdict:     cmp.Verdict,
			Degradation: degradationNote(ri, rj),
		})
		speedups = append(speedups, cmp.Speedup)
	}
	return out, stats.GeoMean(speedups), nil
}

// degradationNote summarizes lost work across both arms of a comparison
// ("" when clean or unsupervised).
func degradationNote(ri, rj *harness.Result) string {
	note := func(arm string, r *harness.Result) string {
		sv := r.Supervision
		if sv == nil || !sv.Degraded() {
			return ""
		}
		return fmt.Sprintf("%s: N %d/%d, %d retries, %d quarantined",
			arm, sv.EffectiveN(), sv.Planned, sv.Retries, sv.QuarantinedSamples)
	}
	ni, nj := note("interp", ri), note("jit", rj)
	switch {
	case ni != "" && nj != "":
		return ni + "; " + nj
	case ni != "":
		return ni
	default:
		return nj
	}
}

func (e *Engine) runPair(b workloads.Benchmark) (*harness.Result, *harness.Result, error) {
	ri, err := e.run(b, vm.ModeInterp, e.cfg.Invocations, e.cfg.Iterations, false)
	if err != nil {
		return nil, nil, err
	}
	rj, err := e.run(b, vm.ModeJIT, e.cfg.Invocations, e.cfg.Iterations, false)
	if err != nil {
		return nil, nil, err
	}
	return ri, rj, nil
}
