package core

import (
	"fmt"
	"math"

	"repro/internal/harness"
	"repro/internal/methodology"
	"repro/internal/noise"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// AblationDispatch — A1: sensitivity of interpreter cost to the per-op
// dispatch overhead (the knob the switch-vs-threaded-dispatch debate turns
// on). Reports geomean cycles relative to the default overhead.
func (e *Engine) AblationDispatch() (*report.Table, error) {
	t := report.NewTable("Ablation A1: dispatch-overhead sensitivity (interpreter)",
		"dispatch instrs/op", "geomean rel. cycles", "geomean rel. to zero")
	overheads := []uint32{0, 4, 9, 16, 24}
	defaultOv := vm.DefaultCostParams().DispatchOverhead
	perOverhead := map[uint32][]float64{}
	for _, b := range e.cfg.Benchmarks {
		for _, ov := range overheads {
			cost := vm.DefaultCostParams()
			cost.DispatchOverhead = ov
			res, err := e.runner.Run(b, harness.Options{
				Mode:        vm.ModeInterp,
				Invocations: 1,
				Iterations:  2,
				Noise:       noise.None(),
				Cost:        cost,
			})
			if err != nil {
				return nil, err
			}
			cyc := res.Invocations[0].Cycles
			perOverhead[ov] = append(perOverhead[ov], float64(cyc[len(cyc)-1]))
		}
	}
	baseline := stats.GeoMean(perOverhead[defaultOv])
	zero := stats.GeoMean(perOverhead[0])
	for _, ov := range overheads {
		g := stats.GeoMean(perOverhead[ov])
		t.AddRow(ov, g/baseline, g/zero)
	}
	t.Caption = fmt.Sprintf("Noise-free steady iteration cycles over the suite; default overhead is %d instrs/op.", defaultOv)
	return t, nil
}

// AblationJITThreshold — A2: JIT hot-loop threshold sweep: total cycles for
// a fixed iteration budget (warmup included), geomean over the suite,
// relative to the default threshold.
func (e *Engine) AblationJITThreshold() (*report.Table, error) {
	t := report.NewTable("Ablation A2: JIT hot-loop threshold sensitivity",
		"threshold", "geomean rel. total cycles", "geomean traces")
	thresholds := []int{2, 8, 16, 64, 256, 1024}
	def := vm.DefaultCostParams().JITThreshold
	totals := map[int][]float64{}
	traces := map[int][]float64{}
	for _, b := range e.cfg.Benchmarks {
		for _, th := range thresholds {
			cost := vm.DefaultCostParams()
			cost.JITThreshold = th
			res, err := e.runner.Run(b, harness.Options{
				Mode:        vm.ModeJIT,
				Invocations: 1,
				Iterations:  e.cfg.Iterations,
				Noise:       noise.None(),
				Cost:        cost,
			})
			if err != nil {
				return nil, err
			}
			total := 0.0
			for _, c := range res.Invocations[0].Cycles {
				total += float64(c)
			}
			totals[th] = append(totals[th], total)
			traces[th] = append(traces[th], float64(res.Invocations[0].JITTraces)+1)
		}
	}
	baseline := stats.GeoMean(totals[def])
	for _, th := range thresholds {
		t.AddRow(th, stats.GeoMean(totals[th])/baseline, stats.GeoMean(traces[th])-0)
	}
	t.Caption = fmt.Sprintf("Total cycles for %d iterations including compile pauses; default threshold %d.",
		e.cfg.Iterations, def)
	return t, nil
}

// AblationCIMethod — A3: empirical coverage of three CI constructions on
// synthetic two-level data with known true mean: flattened t-interval
// (wrong), invocation-means t-interval (Kalibera–Jones), and hierarchical
// awareness via invocation means bootstrap.
func (e *Engine) AblationCIMethod() (*report.Table, error) {
	t := report.NewTable("Ablation A3: CI construction coverage (nominal 95%)",
		"method", "coverage%", "mean rel half-width%")
	const trueMean = 1.0
	trials := e.cfg.Trials
	if trials > 300 {
		trials = 300
	}
	rng := stats.NewRNG(e.cfg.Seed ^ 0xC1C1)
	type method struct {
		name string
		ci   func(stats.HierarchicalSample, *stats.RNG) stats.Interval
	}
	methods := []method{
		{"flattened-t (naive)", func(h stats.HierarchicalSample, _ *stats.RNG) stats.Interval {
			return stats.NaiveFlattenedCI(h, 0.95)
		}},
		{"invocation-means t (KJ)", func(h stats.HierarchicalSample, _ *stats.RNG) stats.Interval {
			return stats.KaliberaMeanCI(h, 0.95)
		}},
		{"invocation-means bootstrap", func(h stats.HierarchicalSample, r *stats.RNG) stats.Interval {
			return stats.BootstrapMeanCI(h.InvocationMeans(), 0.95, 400, r)
		}},
	}
	covered := make([]int, len(methods))
	hwSum := make([]float64, len(methods))
	p := e.cfg.Noise
	for tr := 0; tr < trials; tr++ {
		// Two-level synthetic data around trueMean with the configured
		// noise structure.
		times := make([][]float64, e.cfg.Invocations)
		for i := range times {
			src := noise.NewSource(p, rng.Uint64(), i)
			row := make([]float64, e.cfg.Iterations)
			for j := range row {
				row[j] = src.Apply(trueMean)
			}
			times[i] = row
		}
		h := stats.HierarchicalSample{Times: times}
		// The achievable target is the mean of the noise distribution, not
		// exactly 1.0 (lognormal has mean exp(sigma^2/2), spikes add mass);
		// estimate it once from a large reference sample.
		for mi, m := range methods {
			ci := m.ci(h, rng)
			if ci.Contains(noiseMean(p, trueMean)) {
				covered[mi]++
			}
			hwSum[mi] += ci.RelHalfWidth()
		}
	}
	for mi, m := range methods {
		t.AddRow(m.name,
			100*float64(covered[mi])/float64(trials),
			100*hwSum[mi]/float64(trials))
	}
	t.Caption = fmt.Sprintf("%d synthetic experiments (%d×%d) under the default noise model; flattened intervals undercover because iterations within an invocation are correlated.",
		trials, e.cfg.Invocations, e.cfg.Iterations)
	return t, nil
}

// noiseMean computes the true expected measured time for base time b under
// the noise model (lognormal means plus expected spike mass).
func noiseMean(p noise.Params, b float64) float64 {
	m := b
	m *= lognormalMean(p.InvocationSigma)
	m *= lognormalMean(p.IterationSigma)
	m += b * p.SpikeProb * p.SpikeScale
	return m
}

func lognormalMean(sigma float64) float64 {
	if sigma == 0 {
		return 1
	}
	return expHalfSq(sigma)
}

func expHalfSq(s float64) float64 {
	return mathExp(s * s / 2)
}

// AblationChangepoint — A4: steady-state detection accuracy versus the PELT
// penalty multiplier on synthetic warmup series with a known changepoint.
func (e *Engine) AblationChangepoint() (*report.Table, error) {
	t := report.NewTable("Ablation A4: changepoint penalty sensitivity",
		"penalty multiplier", "detect%", "mean |loc err| iters", "false-pos on flat%")
	multipliers := []float64{0.5, 1, 2, 3, 6, 12}
	trials := e.cfg.Trials
	if trials > 200 {
		trials = 200
	}
	n := e.cfg.WarmupIterations
	trueCP := n / 4
	rng := stats.NewRNG(e.cfg.Seed ^ 0xCCCC)
	for _, mult := range multipliers {
		detected, fp := 0, 0
		locErr := 0.0
		for tr := 0; tr < trials; tr++ {
			warm := syntheticWarmup(n, trueCP, 1.6, 0.01, rng)
			sigma2 := 0.01 * 0.01
			pen := mult * 3 * logf(n) * sigma2
			cps := stats.PELT(warm, pen)
			if len(cps) > 0 {
				detected++
				best := cps[0]
				for _, c := range cps {
					if absInt(c-trueCP) < absInt(best-trueCP) {
						best = c
					}
				}
				locErr += float64(absInt(best - trueCP))
			}
			flat := syntheticWarmup(n, 0, 1.0, 0.01, rng)
			if len(stats.PELT(flat, pen)) > 0 {
				fp++
			}
		}
		meanErr := 0.0
		if detected > 0 {
			meanErr = locErr / float64(detected)
		}
		t.AddRow(mult,
			100*float64(detected)/float64(trials),
			meanErr,
			100*float64(fp)/float64(trials))
	}
	t.Caption = fmt.Sprintf("Synthetic series: %d iterations, step at %d, 1.6x warmup level, 1%% noise; default multiplier is 1 (penalty 3·ln(n)·σ²).",
		n, trueCP)
	return t, nil
}

// syntheticWarmup builds a step series: `level`× slower before cp, 1.0
// after, with multiplicative Gaussian noise sigma.
func syntheticWarmup(n, cp int, level, sigma float64, rng *stats.RNG) []float64 {
	out := make([]float64, n)
	for i := range out {
		base := 1.0
		if i < cp {
			base = level
		}
		out[i] = base * (1 + sigma*rng.NormFloat64())
	}
	return out
}

func absInt(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func mathExp(x float64) float64 { return math.Exp(x) }
func logf(n int) float64        { return math.Log(float64(n)) }

// AblationNoiseModel — A5: how the simulated machine's noise level changes
// the experiment cost needed for a ±1% grand-mean CI, using the adaptive
// sequential design. This is the "tune your machine or pay in invocations"
// trade-off quantified.
func (e *Engine) AblationNoiseModel() (*report.Table, error) {
	t := report.NewTable("Ablation A5: noise-model sensitivity (adaptive design, target ±1%)",
		"machine", "median invocations", "converged%", "median CI ±%")
	models := []struct {
		name string
		p    noise.Params
	}{
		{"quiet (tuned lab)", noise.Quiet()},
		{"default (desktop)", noise.Default()},
		{"noisy (shared CI)", noise.Noisy()},
	}
	bench := e.cfg.Benchmarks
	if len(bench) > 4 {
		bench = bench[:4]
	}
	for _, m := range models {
		var invocations, widths []float64
		converged := 0
		total := 0
		for _, b := range bench {
			base := harness.Options{
				Mode:        vm.ModeInterp,
				Invocations: 5,
				Iterations:  e.cfg.Iterations,
				Seed:        e.cfg.Seed ^ benchSeed(b.Name, vm.ModeInterp),
				Noise:       m.p,
			}
			res, err := e.runner.RunAdaptive(b, harness.AdaptiveOptions{
				Base:               base,
				TargetRelHalfWidth: 0.01,
				MaxInvocations:     60,
				BatchSize:          5,
			})
			if err != nil {
				return nil, err
			}
			invocations = append(invocations, float64(len(res.Result.Invocations)))
			widths = append(widths, 100*res.CI.RelHalfWidth())
			if res.Converged {
				converged++
			}
			total++
		}
		t.AddRow(m.name, stats.Median(invocations),
			pct(float64(converged)/float64(total)), stats.Median(widths))
	}
	t.Caption = "Adaptive sequential design (pilot 5, batches of 5, cap 60) on the first four suite benchmarks."
	return t, nil
}

// AblationInlineCache — A6: effect of a specializing interpreter (CPython
// 3.11-style inline caching) per benchmark, with the tracing JIT as the
// upper reference. Reports steady-iteration cycles relative to the plain
// interpreter.
func (e *Engine) AblationInlineCache() (*report.Table, error) {
	t := report.NewTable("Ablation A6: specializing interpreter (inline caching)",
		"benchmark", "class", "interp+IC rel. cycles", "jit rel. cycles")
	steady := func(b workloads.Benchmark, mode vm.Mode, ic bool) (float64, error) {
		cost := vm.DefaultCostParams()
		cost.InlineCache = ic
		res, err := e.runner.Run(b, harness.Options{
			Mode:        mode,
			Invocations: 1,
			Iterations:  6,
			Noise:       noise.None(),
			Cost:        cost,
		})
		if err != nil {
			return 0, err
		}
		cyc := res.Invocations[0].Cycles
		return float64(cyc[len(cyc)-1]), nil
	}
	var icRels, jitRels []float64
	for _, b := range e.cfg.Benchmarks {
		base, err := steady(b, vm.ModeInterp, false)
		if err != nil {
			return nil, err
		}
		ic, err := steady(b, vm.ModeInterp, true)
		if err != nil {
			return nil, err
		}
		jit, err := steady(b, vm.ModeJIT, false)
		if err != nil {
			return nil, err
		}
		icRel, jitRel := ic/base, jit/base
		icRels = append(icRels, icRel)
		jitRels = append(jitRels, jitRel)
		t.AddRow(b.Name, string(b.Class), icRel, jitRel)
	}
	t.AddRow("GEOMEAN", "", stats.GeoMean(icRels), stats.GeoMean(jitRels))
	t.Caption = "Steady-iteration cycles relative to the plain interpreter; IC specializes name/attr/arith/call sites after 2 executions."
	return t, nil
}

// AblationSuperinstructions — A7: effect of the opt-in bytecode optimizer
// (constant folding, dead-store elimination, jump threading, and
// superinstruction fusion: -opt 2) on the interpreter. Unlike the steady-
// iteration ablations above, both arms run the full rigorous design — the
// configured invocations × iterations under the configured noise model —
// and are compared with Kalibera–Jones confidence intervals, because the
// optimizer's effect is of the same magnitude as run-to-run noise on some
// benchmarks and a point estimate would overclaim. The checksum validation
// inside each Run is the per-benchmark witness that -opt 2 preserves
// program results.
func (e *Engine) AblationSuperinstructions() (*report.Table, error) {
	t := report.NewTable("Ablation A7: bytecode optimizer + superinstructions (-opt 2)",
		"benchmark", "class", "rel. ops", "speedup", "CI low", "CI high", "verdict")
	rig := methodology.Rigorous{Confidence: e.cfg.Confidence, Seed: e.cfg.Seed}
	arm := func(b workloads.Benchmark, opt int) (*harness.Result, error) {
		return e.runner.Run(b, harness.Options{
			Mode:        vm.ModeInterp,
			Invocations: e.cfg.Invocations,
			Iterations:  e.cfg.Iterations,
			// Salt the seed per arm: the arms must not share a noise stream
			// or the comparison would difference out real perturbations.
			Seed:  e.cfg.Seed ^ benchSeed(b.Name, vm.ModeInterp) ^ uint64(opt)<<48,
			Noise: e.cfg.Noise,
			Opt:   opt,
		})
	}
	var opsRels, speedups []float64
	for _, b := range e.cfg.Benchmarks {
		base, err := arm(b, 0)
		if err != nil {
			return nil, err
		}
		opt, err := arm(b, 2)
		if err != nil {
			return nil, err
		}
		// Executed-op reduction is deterministic (simulated counts are
		// noise-free), so the last steady iteration of one invocation is
		// exact; the wall-clock effect needs the full interval machinery.
		sb := base.Invocations[0].Steps
		so := opt.Invocations[0].Steps
		opsRel := float64(so[len(so)-1]) / float64(sb[len(sb)-1])
		cmp := rig.Compare(base.Hierarchical(), opt.Hierarchical())
		opsRels = append(opsRels, opsRel)
		speedups = append(speedups, cmp.Speedup)
		t.AddRow(b.Name, string(b.Class), opsRel,
			cmp.Speedup, cmp.CI.Lo, cmp.CI.Hi, cmp.Verdict.String())
	}
	t.AddRow("GEOMEAN", "", stats.GeoMean(opsRels), stats.GeoMean(speedups), "", "", "")
	t.Caption = fmt.Sprintf(
		"Interpreter, %d invocations × %d iterations per arm; speedup = opt-0 time / opt-2 time with %v%% Kalibera–Jones CIs; rel. ops = executed bytecode ops per steady iteration, opt 2 / opt 0.",
		e.cfg.Invocations, e.cfg.Iterations, 100*e.cfg.Confidence)
	return t, nil
}

// AblationFactGates — A8: effect of the certificate-licensed -opt 3
// rewrites (pure-call constant folding and decided-guard elision, gated on
// the interprocedural analysis of DESIGN.md §14) over the -opt 2 baseline
// they stack on. Both arms run the full rigorous design and are compared
// with Kalibera–Jones intervals, exactly like A7. The expected outcome on
// the canonical suite is a null result — real kernels rarely call pure
// functions on constant arguments or branch on statically-decided
// compares — and that is the point of the table: the gates refuse
// everything the certificate cannot license, and the CI machinery is what
// distinguishes "no transform fired" from "a transform fired and its
// effect drowned in noise". The transforms' positive direction is pinned
// by the analysis package's demo-program tests, and every Run here
// validates checksums, witnessing that -opt 3 preserves results.
func (e *Engine) AblationFactGates() (*report.Table, error) {
	t := report.NewTable("Ablation A8: certificate-gated rewrites (-opt 3 vs -opt 2)",
		"benchmark", "class", "rel. ops", "speedup", "CI low", "CI high", "verdict")
	rig := methodology.Rigorous{Confidence: e.cfg.Confidence, Seed: e.cfg.Seed}
	arm := func(b workloads.Benchmark, opt int) (*harness.Result, error) {
		return e.runner.Run(b, harness.Options{
			Mode:        vm.ModeInterp,
			Invocations: e.cfg.Invocations,
			Iterations:  e.cfg.Iterations,
			Seed:        e.cfg.Seed ^ benchSeed(b.Name, vm.ModeInterp) ^ uint64(opt)<<48,
			Noise:       e.cfg.Noise,
			Opt:         opt,
		})
	}
	var opsRels, speedups []float64
	for _, b := range e.cfg.Benchmarks {
		base, err := arm(b, 2)
		if err != nil {
			return nil, err
		}
		opt, err := arm(b, 3)
		if err != nil {
			return nil, err
		}
		sb := base.Invocations[0].Steps
		so := opt.Invocations[0].Steps
		opsRel := float64(so[len(so)-1]) / float64(sb[len(sb)-1])
		cmp := rig.Compare(base.Hierarchical(), opt.Hierarchical())
		opsRels = append(opsRels, opsRel)
		speedups = append(speedups, cmp.Speedup)
		t.AddRow(b.Name, string(b.Class), opsRel,
			cmp.Speedup, cmp.CI.Lo, cmp.CI.Hi, cmp.Verdict.String())
	}
	t.AddRow("GEOMEAN", "", stats.GeoMean(opsRels), stats.GeoMean(speedups), "", "", "")
	t.Caption = fmt.Sprintf(
		"Interpreter, %d invocations × %d iterations per arm; speedup = opt-2 time / opt-3 time with %v%% Kalibera–Jones CIs; rel. ops = executed bytecode ops per steady iteration, opt 3 / opt 2. rel. ops = 1.000 means no certificate license fired on that benchmark.",
		e.cfg.Invocations, e.cfg.Iterations, 100*e.cfg.Confidence)
	return t, nil
}

// AblationRegisterElision — A9: effect of the register tier's move-elision
// pass (-vm reg-elide) over the default 1:1 register stream. The 1:1
// lowering executes exactly the stack tier's op sequence (that equality is
// what benchgate -equivalence proves), so elision is the first register-
// tier variant that changes the simulated stream: forwarding moves are
// deleted and their dispatches disappear from the step count. Both arms
// run the full rigorous design and are compared with Kalibera–Jones
// intervals, like A7/A8. rel. ops is the deterministic executed-op ratio;
// the checksum validation inside each Run witnesses that elision preserves
// program results even though it is not sample-set-preserving.
func (e *Engine) AblationRegisterElision() (*report.Table, error) {
	t := report.NewTable("Ablation A9: register-tier move elision (-vm reg-elide)",
		"benchmark", "class", "rel. ops", "speedup", "CI low", "CI high", "verdict")
	rig := methodology.Rigorous{Confidence: e.cfg.Confidence, Seed: e.cfg.Seed}
	arm := func(b workloads.Benchmark, vmSpec string, salt uint64) (*harness.Result, error) {
		return e.runner.Run(b, harness.Options{
			Mode:        vm.ModeInterp,
			Invocations: e.cfg.Invocations,
			Iterations:  e.cfg.Iterations,
			Seed:        e.cfg.Seed ^ benchSeed(b.Name, vm.ModeInterp) ^ salt<<48,
			Noise:       e.cfg.Noise,
			VM:          vmSpec,
		})
	}
	var opsRels, speedups []float64
	for _, b := range e.cfg.Benchmarks {
		base, err := arm(b, "reg", 0)
		if err != nil {
			return nil, err
		}
		elided, err := arm(b, "reg-elide", 1)
		if err != nil {
			return nil, err
		}
		sb := base.Invocations[0].Steps
		se := elided.Invocations[0].Steps
		opsRel := float64(se[len(se)-1]) / float64(sb[len(sb)-1])
		cmp := rig.Compare(base.Hierarchical(), elided.Hierarchical())
		opsRels = append(opsRels, opsRel)
		speedups = append(speedups, cmp.Speedup)
		t.AddRow(b.Name, string(b.Class), opsRel,
			cmp.Speedup, cmp.CI.Lo, cmp.CI.Hi, cmp.Verdict.String())
	}
	t.AddRow("GEOMEAN", "", stats.GeoMean(opsRels), stats.GeoMean(speedups), "", "", "")
	t.Caption = fmt.Sprintf(
		"Register tier, %d invocations × %d iterations per arm; speedup = reg time / reg-elide time with %v%% Kalibera–Jones CIs; rel. ops = executed register ops per steady iteration, elided / 1:1. rel. ops < 1 measures deleted forwarding moves.",
		e.cfg.Invocations, e.cfg.Iterations, 100*e.cfg.Confidence)
	return t, nil
}
