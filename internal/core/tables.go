package core

import (
	"fmt"

	"repro/internal/methodology"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/vm"
)

// Table1 — benchmark suite overview: workload class, dynamic bytecode op
// count per iteration, and instruction mix.
func (e *Engine) Table1() (*report.Table, error) {
	t := report.NewTable("Table 1: benchmark suite overview",
		"benchmark", "class", "ops/iter", "instr/iter",
		"ld/st%", "arith%", "branch%", "call%", "alloc%")
	for _, b := range e.cfg.Benchmarks {
		res, err := e.run(b, vm.ModeInterp, 1, 2, true)
		if err != nil {
			return nil, err
		}
		inv := res.Invocations[0]
		// Per-iteration dynamic footprint from the second (steady) call.
		ops := inv.Steps[len(inv.Steps)-1]
		instr := inv.Counters.Instructions / uint64(len(inv.Steps))
		mix := inv.Mix
		t.AddRow(b.Name, string(b.Class), ops, instr,
			pct(mix.LoadStore), pct(mix.Arith), pct(mix.Branch),
			pct(mix.Call), pct(mix.Alloc))
	}
	t.Caption = "Dynamic per-iteration op counts and instruction mix (interpreter, counter model attached)."
	return t, nil
}

func pct(f float64) string { return fmt.Sprintf("%.1f", 100*f) }

// Table2 — per-benchmark timing statistics under both engines: mean,
// coefficient of variation, rigorous 95% CI half-width, and the invocation
// count needed for a ±1% interval.
func (e *Engine) Table2() (*report.Table, error) {
	t := report.NewTable("Table 2: per-benchmark timing statistics",
		"benchmark", "engine", "mean ms", "CoV%", "CI95 ±%", "inv for ±1%")
	for _, b := range e.cfg.Benchmarks {
		for _, mode := range []vm.Mode{vm.ModeInterp, vm.ModeJIT} {
			res, err := e.run(b, mode, e.cfg.Invocations, e.cfg.Iterations, false)
			if err != nil {
				return nil, err
			}
			hs := res.Hierarchical()
			means := hs.InvocationMeans()
			ci := stats.KaliberaMeanCI(hs, e.cfg.Confidence)
			need := stats.RequiredN(means, e.cfg.Confidence, 0.01*stats.Mean(means))
			t.AddRow(b.Name, mode.String(),
				1e3*stats.Mean(means),
				100*stats.CoV(means),
				100*ci.RelHalfWidth(),
				need)
		}
	}
	t.Caption = fmt.Sprintf("%d invocations × %d iterations, default noise model; CI over invocation means (Kalibera–Jones).",
		e.cfg.Invocations, e.cfg.Iterations)
	return t, nil
}

// Table3 — steady-state classification per benchmark × engine from
// changepoint analysis across invocations.
func (e *Engine) Table3() (*report.Table, error) {
	t := report.NewTable("Table 3: steady-state classification",
		"benchmark", "engine", "class", "steady@iter", "reached%", "JIT traces")
	counts := map[string]int{}
	for _, b := range e.cfg.Benchmarks {
		for _, mode := range []vm.Mode{vm.ModeInterp, vm.ModeJIT} {
			res, err := e.run(b, mode, e.cfg.Invocations, e.cfg.WarmupIterations, false)
			if err != nil {
				return nil, err
			}
			rep := methodology.ClassifyExperiment(res.Hierarchical())
			counts[mode.String()+"/"+rep.Class.String()]++
			traces := 0
			for _, inv := range res.Invocations {
				traces += inv.JITTraces
			}
			t.AddRow(b.Name, mode.String(), rep.Class.String(),
				rep.MeanSteadyStart, pct(rep.ReachedSteadyFrac),
				traces/len(res.Invocations))
		}
	}
	caption := "Per-invocation PELT changepoint classification, aggregated; "
	for _, k := range sortedKeysInt(counts) {
		caption += fmt.Sprintf("[%s: %d] ", k, counts[k])
	}
	t.Caption = caption
	return t, nil
}

func sortedKeysInt(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	return keys
}

// Table4 — misleading-conclusion rates of each methodology over synthetic
// trials on every benchmark's real warmup profile.
func (e *Engine) Table4() (*report.Table, error) {
	t := report.NewTable("Table 4: misleading conclusions by methodology",
		"methodology", "misleading%", "missed%", "mean |rel err|%")
	agg := map[string]*methodology.ErrorRates{}
	order := []string{}
	perBench := e.cfg.Trials / len(e.cfg.Benchmarks)
	if perBench < 10 {
		perBench = 10
	}
	for _, b := range e.cfg.Benchmarks {
		gi, gj, err := e.generatorPair(b, e.cfg.Iterations)
		if err != nil {
			return nil, err
		}
		for _, m := range methodology.All(e.cfg.Seed) {
			er := methodology.EvaluateMethodology(m, gi, gj,
				e.cfg.Invocations, e.cfg.Iterations, perBench, 0.01,
				e.cfg.Seed^benchSeed(b.Name, 0))
			a, ok := agg[m.Name()]
			if !ok {
				a = &methodology.ErrorRates{Methodology: m.Name()}
				agg[m.Name()] = a
				order = append(order, m.Name())
			}
			a.Trials += er.Trials
			a.Misleading += er.Misleading
			a.Missed += er.Missed
			a.MeanRelErr += er.MeanRelErr * float64(er.Trials)
		}
	}
	for _, name := range order {
		a := agg[name]
		t.AddRow(name,
			100*a.MisleadingRate(),
			100*a.MissRate(),
			100*a.MeanRelErr/float64(a.Trials))
	}
	t.Caption = fmt.Sprintf("%d synthetic trials per benchmark per methodology on real engine warmup profiles; equivalence band ±1%%.",
		perBench)
	return t, nil
}

// Table5 — microarchitectural characterization of the interpreter under the
// simulated counter model.
func (e *Engine) Table5() (*report.Table, error) {
	t := report.NewTable("Table 5: microarchitectural characterization (interpreter)",
		"benchmark", "IPC", "L1 MPKI", "L2 MPKI", "dTLB MPKI", "br MPKI", "dispatch miss%")
	for _, b := range e.cfg.Benchmarks {
		res, err := e.run(b, vm.ModeInterp, 1, 3, true)
		if err != nil {
			return nil, err
		}
		s := res.Invocations[0].Counters
		t.AddRow(b.Name, s.IPC, s.L1MPKI, s.L2MPKI, s.TLBMPKI, s.BranchMPKI,
			pct(s.DispatchMiss))
	}
	t.Caption = "Simulated 32KiB L1 / 1MiB L2, gshare 14-bit, 64-entry dTLB, dispatch predictor keyed on previous two opcodes."
	return t, nil
}
