// Package exitcode is the repository-wide exit-status taxonomy. Every
// command (pybench, benchgate, benchlint, benchjson, benchtrack, pylint,
// tracecheck, benchchaos) maps its outcomes onto the same five codes, so CI
// scripts can branch on *why* a step failed without parsing stderr:
//
//	0 — success
//	1 — finding: the tool worked and found what it gates on (a perf
//	    regression, a lint diagnostic, an equivalence mismatch)
//	2 — usage: bad flags or arguments; nothing ran
//	3 — infrastructure: an I/O or environment failure (unreadable input,
//	    failed write, broken subprocess) — rerunning may succeed
//	4 — degraded: the run finished but below its quality floor (quorum not
//	    met); results exist but must not be trusted as a full campaign
package exitcode

// The taxonomy. Values are stable public interface; CI depends on them.
const (
	OK       = 0
	Finding  = 1
	Usage    = 2
	Infra    = 3
	Degraded = 4
)

// String names a code for log lines.
func String(code int) string {
	switch code {
	case OK:
		return "ok"
	case Finding:
		return "finding"
	case Usage:
		return "usage"
	case Infra:
		return "infrastructure"
	case Degraded:
		return "degraded"
	}
	return "unknown"
}
