package benchfmt

import "fmt"

// MemThresholds is the memory-regression gate policy. A candidate
// benchmark fails the gate only when its growth over the baseline clears
// BOTH the relative threshold and the absolute practical-effect floor:
// the floor keeps count jitter on already-lean benchmarks (13 → 15
// allocs/op is +15% but two allocations) from failing CI, while the
// relative threshold keeps large benchmarks from absorbing a real
// regression inside a generous absolute budget.
type MemThresholds struct {
	// MaxAllocGrowthPct is the allowed allocs_per_op growth in percent
	// (negative = allocs are not gated).
	MaxAllocGrowthPct float64
	// MaxBytesGrowthPct is the allowed bytes_per_op growth in percent
	// (negative = bytes are not gated).
	MaxBytesGrowthPct float64
	// AllocFloor is the absolute allocs_per_op growth below which a
	// benchmark never fails, regardless of percentage.
	AllocFloor int64
	// BytesFloor is the same floor for bytes_per_op.
	BytesFloor int64
}

// DefaultMemThresholds is the CI policy: 10% alloc growth, 25% bytes
// growth (size classes round, so bytes wobble more than counts), floors
// of 16 allocs and 2 KiB. Go-version variance on these microkernels is
// single allocations, well under both floors.
func DefaultMemThresholds() MemThresholds {
	return MemThresholds{
		MaxAllocGrowthPct: 10,
		MaxBytesGrowthPct: 25,
		AllocFloor:        16,
		BytesFloor:        2048,
	}
}

// MemViolation is one benchmark metric that grew past the gate.
type MemViolation struct {
	Name      string
	Metric    string // "allocs/op" or "B/op"
	Base      int64
	Cand      int64
	GrowthPct float64
}

func (v MemViolation) String() string {
	return fmt.Sprintf("%s: %s grew %d -> %d (+%.1f%%)",
		v.Name, v.Metric, v.Base, v.Cand, v.GrowthPct)
}

// MemGate compares every benchmark present in both documents and returns
// the metrics that regressed past the thresholds. Benchmarks new in the
// candidate (no baseline entry) and entries without memory stats (no
// -benchmem, both sides zero) are skipped: the gate locks in wins on the
// committed series, it does not police additions.
func MemGate(base, cand *Doc, th MemThresholds) []MemViolation {
	var out []MemViolation
	for _, c := range cand.Benchmarks {
		b, ok := base.Entry(c.Name)
		if !ok {
			continue
		}
		if th.MaxAllocGrowthPct >= 0 {
			if v, bad := gateMetric(c.Name, "allocs/op", b.AllocsPerOp, c.AllocsPerOp,
				th.MaxAllocGrowthPct, th.AllocFloor); bad {
				out = append(out, v)
			}
		}
		if th.MaxBytesGrowthPct >= 0 {
			if v, bad := gateMetric(c.Name, "B/op", b.BytesPerOp, c.BytesPerOp,
				th.MaxBytesGrowthPct, th.BytesFloor); bad {
				out = append(out, v)
			}
		}
	}
	return out
}

// gateMetric applies the two-sided policy to one metric: fail only when
// the absolute growth clears the floor AND the relative growth clears the
// percentage (a zero baseline with growth past the floor always fails —
// there is no meaningful percentage to compare).
func gateMetric(name, metric string, base, cand int64, maxPct float64, floor int64) (MemViolation, bool) {
	growth := cand - base
	if growth <= floor {
		return MemViolation{}, false
	}
	pct := 0.0
	if base > 0 {
		pct = 100 * float64(growth) / float64(base)
		if pct <= maxPct {
			return MemViolation{}, false
		}
	}
	return MemViolation{Name: name, Metric: metric, Base: base, Cand: cand, GrowthPct: pct}, true
}
