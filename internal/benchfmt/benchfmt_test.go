package benchfmt

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/vm
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDispatchArith-8   	     471	    469526 ns/op	   79336 B/op	    9176 allocs/op
BenchmarkDispatchArith-8   	     480	    450000 ns/op	   79336 B/op	    9176 allocs/op
BenchmarkNoMem-8           	    1000	      1234.5 ns/op
PASS
ok  	repro/internal/vm	2.124s
`

func TestParseKeepsFastestRun(t *testing.T) {
	doc, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.CPU == "" {
		t.Errorf("header not parsed: %+v", doc)
	}
	if len(doc.Benchmarks) != 2 {
		t.Fatalf("got %d benchmarks, want 2 (duplicates folded)", len(doc.Benchmarks))
	}
	e, ok := doc.Entry("BenchmarkDispatchArith")
	if !ok || e.NsPerOp != 450000 || e.AllocsPerOp != 9176 {
		t.Errorf("fastest run not kept: %+v", e)
	}
	if _, ok := doc.Entry("BenchmarkMissing"); ok {
		t.Error("Entry found a benchmark that is not there")
	}
}

func TestWriteRoundTrips(t *testing.T) {
	doc := &Doc{Commit: "abc", Benchmarks: []Entry{{Name: "BenchmarkX", NsPerOp: 10}}}
	var sb strings.Builder
	if err := doc.Write(&sb); err != nil {
		t.Fatal(err)
	}
	s := sb.String()
	if !strings.Contains(s, `"commit": "abc"`) || !strings.Contains(s, `"name": "BenchmarkX"`) {
		t.Errorf("written doc missing fields:\n%s", s)
	}
}
