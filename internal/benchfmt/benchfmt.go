// Package benchfmt is the shared model of the repository's wall-clock
// benchmark documents: the JSON shape cmd/benchjson emits (the committed
// BENCH_vm.json), the parser that produces it from `go test -bench
// -benchmem` text, and the memory-regression gate that compares two
// documents' allocs_per_op / bytes_per_op with a practical-effect floor.
//
// It exists so the three consumers — cmd/benchjson (emission + compare),
// cmd/benchgate (CI gating), and internal/perfstore (longitudinal
// ingestion) — agree on one document type instead of three mirrors.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Doc is the benchmark JSON document. The provenance block (commit,
// branch, go_version, time_utc) is stamped on emission so cmd/benchtrack
// can attribute the measurements to a commit without side-channel flags;
// readers tolerate docs that predate the stamp.
type Doc struct {
	Goos      string `json:"goos,omitempty"`
	Goarch    string `json:"goarch,omitempty"`
	Pkg       string `json:"pkg,omitempty"`
	CPU       string `json:"cpu,omitempty"`
	Commit    string `json:"commit,omitempty"`
	Branch    string `json:"branch,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	TimeUTC   string `json:"time_utc,omitempty"`

	Benchmarks []Entry `json:"benchmarks"`
}

// Entry returns the named benchmark's measurement, if present.
func (d *Doc) Entry(name string) (Entry, bool) {
	for _, e := range d.Benchmarks {
		if e.Name == name {
			return e, true
		}
	}
	return Entry{}, false
}

// benchLine matches e.g.
// "BenchmarkDispatchArith-8   471   469526 ns/op   79336 B/op   9176 allocs/op"
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

// Parse converts `go test -bench -benchmem` text output into a document.
// With -count N the same benchmark appears N times; the fastest run is
// kept — under one-sided scheduling noise the minimum is the best
// estimator of true cost (per the methodology papers this repo
// reproduces, wall-clock noise only ever adds time).
func Parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	index := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		e := Entry{Name: m[1]}
		e.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		e.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			e.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			e.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		if i, ok := index[e.Name]; ok {
			if e.NsPerOp < doc.Benchmarks[i].NsPerOp {
				doc.Benchmarks[i] = e
			}
			continue
		}
		index[e.Name] = len(doc.Benchmarks)
		doc.Benchmarks = append(doc.Benchmarks, e)
	}
	return doc, sc.Err()
}

// ReadFile loads a document from disk.
func ReadFile(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := &Doc{}
	if err := json.Unmarshal(data, doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

// Write emits the document as indented JSON to w.
func (d *Doc) Write(w io.Writer) error {
	data, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}
