package benchfmt

import (
	"strings"
	"testing"
)

func docOf(entries ...Entry) *Doc { return &Doc{Benchmarks: entries} }

func TestMemGatePassesWithinThresholds(t *testing.T) {
	base := docOf(Entry{Name: "BenchmarkA", AllocsPerOp: 1000, BytesPerOp: 100000})
	cand := docOf(Entry{Name: "BenchmarkA", AllocsPerOp: 1050, BytesPerOp: 110000})
	if v := MemGate(base, cand, DefaultMemThresholds()); len(v) != 0 {
		t.Errorf("5%%/10%% growth should pass the default gate, got %v", v)
	}
}

func TestMemGateFailsPastBothBars(t *testing.T) {
	base := docOf(Entry{Name: "BenchmarkA", AllocsPerOp: 1000, BytesPerOp: 100000})
	cand := docOf(Entry{Name: "BenchmarkA", AllocsPerOp: 1200, BytesPerOp: 100000})
	v := MemGate(base, cand, DefaultMemThresholds())
	if len(v) != 1 || v[0].Metric != "allocs/op" || v[0].Cand != 1200 {
		t.Fatalf("20%% alloc growth should fail exactly once, got %v", v)
	}
	if !strings.Contains(v[0].String(), "1000 -> 1200") {
		t.Errorf("violation message = %q", v[0].String())
	}
}

// The practical-effect floor: a lean benchmark growing by a couple of
// allocations is a large percentage but no practical effect.
func TestMemGateFloorAbsorbsCountJitter(t *testing.T) {
	base := docOf(Entry{Name: "BenchmarkLean", AllocsPerOp: 13, BytesPerOp: 1752})
	cand := docOf(Entry{Name: "BenchmarkLean", AllocsPerOp: 15, BytesPerOp: 2100})
	if v := MemGate(base, cand, DefaultMemThresholds()); len(v) != 0 {
		t.Errorf("+2 allocs / +348 B is under both floors, got %v", v)
	}
	// Past the floor AND the percentage: fails.
	cand = docOf(Entry{Name: "BenchmarkLean", AllocsPerOp: 40, BytesPerOp: 1752})
	if v := MemGate(base, cand, DefaultMemThresholds()); len(v) != 1 {
		t.Errorf("+27 allocs on a 13-alloc baseline should fail, got %v", v)
	}
}

func TestMemGateZeroBaselineUsesFloorOnly(t *testing.T) {
	base := docOf(Entry{Name: "BenchmarkZ"})
	cand := docOf(Entry{Name: "BenchmarkZ", AllocsPerOp: 100})
	v := MemGate(base, cand, DefaultMemThresholds())
	if len(v) != 1 || v[0].GrowthPct != 0 {
		t.Errorf("zero baseline past the floor should fail with no pct, got %v", v)
	}
}

func TestMemGateSkipsNewAndDisabled(t *testing.T) {
	base := docOf(Entry{Name: "BenchmarkA", AllocsPerOp: 10})
	cand := docOf(
		Entry{Name: "BenchmarkA", AllocsPerOp: 10000},
		Entry{Name: "BenchmarkNew", AllocsPerOp: 99999},
	)
	// New benchmark skipped; disabled thresholds gate nothing.
	off := MemThresholds{MaxAllocGrowthPct: -1, MaxBytesGrowthPct: -1}
	if v := MemGate(base, cand, off); len(v) != 0 {
		t.Errorf("disabled gate produced %v", v)
	}
	v := MemGate(base, cand, DefaultMemThresholds())
	if len(v) != 1 || v[0].Name != "BenchmarkA" {
		t.Errorf("want one violation on BenchmarkA only, got %v", v)
	}
}
