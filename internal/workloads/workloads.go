// Package workloads provides the MiniPy benchmark suite — ports of
// pyperformance-style kernels covering the workload classes the paper's
// characterization needs: numeric loop kernels, recursion/call-heavy code,
// object-graph workloads, and string/dict churn. Every benchmark defines a
// run() function that executes one measured iteration and returns a
// checksum, so engines can be cross-validated.
package workloads

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/minipy"
)

// Class is a broad workload category used in the suite-overview table.
type Class string

// Workload classes.
const (
	ClassNumeric Class = "numeric"
	ClassCall    Class = "call"
	ClassObject  Class = "object"
	ClassString  Class = "string"
	ClassDict    Class = "dict"
	ClassMixed   Class = "mixed"
)

// Benchmark is one suite entry.
type Benchmark struct {
	Name        string
	Description string
	Class       Class
	Source      string
	// Checksum is the expected repr() of run()'s return value; empty means
	// unchecked (e.g. float-returning benchmarks validated by cross-engine
	// agreement instead).
	Checksum string
}

// Compile compiles, bytecode-verifies, and statically analyzes the
// benchmark source, caching nothing (callers cache). Every compile path —
// CLI, harness, supervised fault-injection recompiles, generated workloads —
// funnels through here, so a miscompiled or statically-broken program
// surfaces as a positioned per-benchmark error, never a VM fault at a
// distance.
func (b Benchmark) Compile() (*minipy.Code, error) {
	code, err := minipy.CompileSource(b.Source)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", b.Name, err)
	}
	if err := analysis.Check(code); err != nil {
		return nil, fmt.Errorf("workload %s: %w", b.Name, err)
	}
	return code, nil
}

// Analyze compiles the benchmark and runs the full static-analysis report
// (CFG, definite assignment, type inference, liveness, determinism audit).
func (b Benchmark) Analyze() (*analysis.Report, error) {
	code, err := minipy.CompileSource(b.Source)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", b.Name, err)
	}
	rep, err := analysis.Analyze(code)
	if err != nil {
		return nil, fmt.Errorf("workload %s: %w", b.Name, err)
	}
	return rep, nil
}

// ByName returns the benchmark with the given name, searching the
// canonical suite first and then the extended set.
func ByName(name string) (Benchmark, bool) {
	for _, b := range Suite() {
		if b.Name == name {
			return b, true
		}
	}
	for _, b := range Extended() {
		if b.Name == name {
			return b, true
		}
	}
	return Benchmark{}, false
}

// Suite returns the full benchmark suite in canonical order.
func Suite() []Benchmark {
	return []Benchmark{
		{Name: "fib", Checksum: "1597", Class: ClassCall,
			Description: "naive recursive Fibonacci; call-dominated", Source: srcFib},
		{Name: "nbody", Checksum: "-0.16928356282345938", Class: ClassNumeric,
			Description: "planetary n-body simulation step; float loop kernel", Source: srcNBody},
		{Name: "fannkuch", Checksum: "17916", Class: ClassNumeric,
			Description: "fannkuch-redux permutation flipping; int/list kernel", Source: srcFannkuch},
		{Name: "spectralnorm", Checksum: "1.2732291638579598", Class: ClassNumeric,
			Description: "spectral norm power iteration; nested float loops", Source: srcSpectralNorm},
		{Name: "mandelbrot", Checksum: "11787", Class: ClassNumeric,
			Description: "mandelbrot escape iteration; float + irregular branches", Source: srcMandelbrot},
		{Name: "matmul", Checksum: "35.986828", Class: ClassNumeric,
			Description: "dense matrix multiply on nested lists", Source: srcMatmul},
		{Name: "collatz", Checksum: "20114", Class: ClassNumeric,
			Description: "Collatz chain lengths; branchy integer loop", Source: srcCollatz},
		{Name: "quicksort", Checksum: "589301", Class: ClassCall,
			Description: "recursive quicksort of pseudo-random ints", Source: srcQuicksort},
		{Name: "binarytrees", Checksum: "2018", Class: ClassObject,
			Description: "binary tree allocate/traverse; object allocation churn", Source: srcBinaryTrees},
		{Name: "richards", Checksum: "522", Class: ClassObject,
			Description: "task scheduler with polymorphic dispatch (richards-lite)", Source: srcRichards},
		{Name: "deltablue", Checksum: "99608", Class: ClassObject,
			Description: "one-way constraint propagation chain (deltablue-lite)", Source: srcDeltaBlue},
		{Name: "raytrace", Checksum: "147.26195860813635", Class: ClassObject,
			Description: "sphere ray intersection grid; method-call heavy vectors", Source: srcRaytrace},
		{Name: "strings", Checksum: "51548", Class: ClassString,
			Description: "split/join/replace/case string pipeline", Source: srcStrings},
		{Name: "wordcount", Checksum: "'\\'the\\' 78'", Class: ClassDict,
			Description: "tokenize text and count words in a dict", Source: srcWordcount},
		{Name: "dictstress", Checksum: "301106", Class: ClassDict,
			Description: "dict insert/lookup/delete churn with string keys", Source: srcDictStress},
		{Name: "branchy", Checksum: "8891", Class: ClassMixed,
			Description: "data-dependent unpredictable branches; JIT-guard hostile", Source: srcBranchy},
	}
}

const srcFib = `
def fib(n):
    if n < 2:
        return n
    return fib(n - 1) + fib(n - 2)

def run():
    return fib(17)
`

const srcNBody = `
PI = 3.141592653589793
SOLAR_MASS = 4.0 * PI * PI
DAYS_PER_YEAR = 365.24

def make_bodies():
    sun = [0.0, 0.0, 0.0, 0.0, 0.0, 0.0, SOLAR_MASS]
    jupiter = [4.84143144246472090, -1.16032004402742839, -0.103622044471123109,
        0.00166007664274403694 * DAYS_PER_YEAR, 0.00769901118419740425 * DAYS_PER_YEAR,
        -0.0000690460016972063023 * DAYS_PER_YEAR, 0.000954791938424326609 * SOLAR_MASS]
    saturn = [8.34336671824457987, 4.12479856412430479, -0.403523417114321381,
        -0.00276742510726862411 * DAYS_PER_YEAR, 0.00499852801234917238 * DAYS_PER_YEAR,
        0.0000230417297573763929 * DAYS_PER_YEAR, 0.000285885980666130812 * SOLAR_MASS]
    uranus = [12.8943695621391310, -15.1111514016986312, -0.223307578892655734,
        0.00296460137564761618 * DAYS_PER_YEAR, 0.00237847173959480950 * DAYS_PER_YEAR,
        -0.0000296589568540237556 * DAYS_PER_YEAR, 0.0000436624404335156298 * SOLAR_MASS]
    neptune = [15.3796971148509165, -25.9193146099879641, 0.179258772950371181,
        0.00268067772490389322 * DAYS_PER_YEAR, 0.00162824170038242295 * DAYS_PER_YEAR,
        -0.0000951592254519715870 * DAYS_PER_YEAR, 0.0000515138902046611451 * SOLAR_MASS]
    return [sun, jupiter, saturn, uranus, neptune]

def advance(bodies, dt, steps):
    n = len(bodies)
    s = 0
    while s < steps:
        i = 0
        while i < n:
            bi = bodies[i]
            j = i + 1
            while j < n:
                bj = bodies[j]
                dx = bi[0] - bj[0]
                dy = bi[1] - bj[1]
                dz = bi[2] - bj[2]
                d2 = dx * dx + dy * dy + dz * dz
                mag = dt / (d2 * sqrt(d2))
                bm = bj[6] * mag
                am = bi[6] * mag
                bi[3] -= dx * bm
                bi[4] -= dy * bm
                bi[5] -= dz * bm
                bj[3] += dx * am
                bj[4] += dy * am
                bj[5] += dz * am
                j += 1
            i += 1
        i = 0
        while i < n:
            b = bodies[i]
            b[0] += dt * b[3]
            b[1] += dt * b[4]
            b[2] += dt * b[5]
            i += 1
        s += 1

def energy(bodies):
    e = 0.0
    n = len(bodies)
    i = 0
    while i < n:
        bi = bodies[i]
        e += 0.5 * bi[6] * (bi[3] * bi[3] + bi[4] * bi[4] + bi[5] * bi[5])
        j = i + 1
        while j < n:
            bj = bodies[j]
            dx = bi[0] - bj[0]
            dy = bi[1] - bj[1]
            dz = bi[2] - bj[2]
            e -= bi[6] * bj[6] / sqrt(dx * dx + dy * dy + dz * dz)
            j += 1
        i += 1
    return e

def run():
    bodies = make_bodies()
    advance(bodies, 0.01, 30)
    return energy(bodies)
`

const srcFannkuch = `
def fannkuch(n):
    perm1 = []
    for i in range(n):
        perm1.append(i)
    count = [0] * n
    max_flips = 0
    checksum = 0
    perm_count = 0
    r = n
    while True:
        while r != 1:
            count[r - 1] = r
            r -= 1
        if perm1[0] != 0 and perm1[n - 1] != n - 1:
            perm = perm1[:]
            flips = 0
            k = perm[0]
            while k != 0:
                i = 0
                j = k
                while i < j:
                    t = perm[i]
                    perm[i] = perm[j]
                    perm[j] = t
                    i += 1
                    j -= 1
                flips += 1
                k = perm[0]
            if flips > max_flips:
                max_flips = flips
            if perm_count % 2 == 0:
                checksum += flips
            else:
                checksum -= flips
        perm_count += 1
        while True:
            if r == n:
                return checksum * 100 + max_flips
            p0 = perm1[0]
            i = 0
            while i < r:
                perm1[i] = perm1[i + 1]
                i += 1
            perm1[r] = p0
            count[r] -= 1
            if count[r] > 0:
                break
            r += 1

def run():
    return fannkuch(7)
`

const srcSpectralNorm = `
def eval_A(i, j):
    return 1.0 / ((i + j) * (i + j + 1) // 2 + i + 1)

def mul_Av(v, n):
    out = []
    for i in range(n):
        s = 0.0
        for j in range(n):
            s += eval_A(i, j) * v[j]
        out.append(s)
    return out

def mul_Atv(v, n):
    out = []
    for i in range(n):
        s = 0.0
        for j in range(n):
            s += eval_A(j, i) * v[j]
        out.append(s)
    return out

def mul_AtAv(v, n):
    return mul_Atv(mul_Av(v, n), n)

def run():
    n = 14
    u = [1.0] * n
    v = []
    for it in range(6):
        v = mul_AtAv(u, n)
        u = mul_AtAv(v, n)
    vBv = 0.0
    vv = 0.0
    for i in range(n):
        vBv += u[i] * v[i]
        vv += v[i] * v[i]
    return sqrt(vBv / vv)
`

const srcMandelbrot = `
def run():
    size = 24
    limit = 4.0
    max_iter = 40
    total = 0
    for py in range(size):
        ci = 2.0 * py / size - 1.0
        for px in range(size):
            cr = 2.0 * px / size - 1.5
            zr = 0.0
            zi = 0.0
            n = 0
            while n < max_iter:
                zr2 = zr * zr
                zi2 = zi * zi
                if zr2 + zi2 > limit:
                    break
                zi = 2.0 * zr * zi + ci
                zr = zr2 - zi2 + cr
                n += 1
            total += n
    return total
`

const srcMatmul = `
def make_matrix(n, seed):
    m = []
    s = seed
    for i in range(n):
        row = []
        for j in range(n):
            s = (s * 1103515245 + 12345) % 2147483648
            row.append(float(s % 1000) / 1000.0)
        m.append(row)
    return m

def matmul(a, b, n):
    out = []
    for i in range(n):
        arow = a[i]
        row = []
        for j in range(n):
            s = 0.0
            for k in range(n):
                s += arow[k] * b[k][j]
            row.append(s)
        out.append(row)
    return out

def run():
    n = 12
    a = make_matrix(n, 42)
    b = make_matrix(n, 1234)
    c = matmul(a, b, n)
    total = 0.0
    for i in range(n):
        total += c[i][i]
    return total
`

const srcCollatz = `
def chain_length(n):
    steps = 0
    while n != 1:
        if n % 2 == 0:
            n = n // 2
        else:
            n = 3 * n + 1
        steps += 1
    return steps

def run():
    total = 0
    for i in range(2, 400):
        total += chain_length(i)
    return total
`

const srcQuicksort = `
def quicksort(xs):
    if len(xs) < 2:
        return xs
    pivot = xs[0]
    less = []
    more = []
    for v in xs[1:]:
        if v < pivot:
            less.append(v)
        else:
            more.append(v)
    return quicksort(less) + [pivot] + quicksort(more)

def run():
    seed = 987654321
    vals = []
    for i in range(250):
        seed = (seed * 1103515245 + 12345) % 2147483648
        vals.append(seed % 1000)
    out = quicksort(vals)
    return out[0] + out[124] * 1000 + out[249] * 100
`

const srcBinaryTrees = `
class Node:
    def __init__(self, left, right):
        self.left = left
        self.right = right

def make_tree(depth):
    if depth == 0:
        return Node(None, None)
    return Node(make_tree(depth - 1), make_tree(depth - 1))

def run():
    total = 0
    for depth in range(4, 8):
        iterations = 2 ** (8 - depth)
        for i in range(iterations):
            total += count(make_tree(depth))
    return total

def count(node):
    if node.left == None:
        return 1
    return 1 + count(node.left) + count(node.right)
`

const srcRichards = `
IDLE = 0
WORKER = 1
HANDLER = 2

class Packet:
    def __init__(self, kind, payload):
        self.kind = kind
        self.payload = payload

class Task:
    def __init__(self, ident):
        self.ident = ident
        self.queue = []
        self.work_done = 0
    def take(self, packet):
        self.queue.append(packet)
    def step(self, system):
        return 0

class IdleTask(Task):
    def step(self, system):
        self.work_done += 1
        if self.work_done % 3 == 0:
            system.dispatch(Packet(WORKER, self.work_done))
        return 1

class WorkerTask(Task):
    def step(self, system):
        if len(self.queue) == 0:
            return 0
        packet = self.queue.pop(0)
        self.work_done += packet.payload % 7
        system.dispatch(Packet(HANDLER, packet.payload + 1))
        return 1

class HandlerTask(Task):
    def step(self, system):
        if len(self.queue) == 0:
            return 0
        packet = self.queue.pop(0)
        self.work_done += packet.payload % 5
        return 1

class System:
    def __init__(self):
        self.tasks = [IdleTask(IDLE), WorkerTask(WORKER), HandlerTask(HANDLER)]
        self.steps = 0
    def dispatch(self, packet):
        self.tasks[packet.kind].take(packet)
    def schedule(self, rounds):
        for r in range(rounds):
            for t in self.tasks:
                self.steps += t.step(self)

def run():
    system = System()
    system.schedule(120)
    total = system.steps
    for t in system.tasks:
        total += t.work_done
    return total
`

const srcDeltaBlue = `
class Variable:
    def __init__(self, value):
        self.value = value
        self.stay = False

class ScaleConstraint:
    def __init__(self, src, dst, scale, offset):
        self.src = src
        self.dst = dst
        self.scale = scale
        self.offset = offset
    def execute(self):
        self.dst.value = self.src.value * self.scale + self.offset

class EqualityConstraint:
    def __init__(self, src, dst):
        self.src = src
        self.dst = dst
    def execute(self):
        self.dst.value = self.src.value

def build_chain(n):
    first = Variable(1)
    prev = first
    constraints = []
    for i in range(n):
        v = Variable(0)
        if i % 2 == 0:
            constraints.append(ScaleConstraint(prev, v, 2, 1))
        else:
            constraints.append(EqualityConstraint(prev, v))
        prev = v
    return first, prev, constraints

def propagate(constraints):
    for c in constraints:
        c.execute()

def run():
    first, last, constraints = build_chain(24)
    total = 0
    for round in range(20):
        first.value = round
        propagate(constraints)
        total += last.value % 10007
    return total
`

const srcRaytrace = `
class Vec:
    def __init__(self, x, y, z):
        self.x = x
        self.y = y
        self.z = z
    def sub(self, o):
        return Vec(self.x - o.x, self.y - o.y, self.z - o.z)
    def dot(self, o):
        return self.x * o.x + self.y * o.y + self.z * o.z
    def scale(self, k):
        return Vec(self.x * k, self.y * k, self.z * k)

class Sphere:
    def __init__(self, center, radius):
        self.center = center
        self.radius = radius
    def intersect(self, origin, direction):
        oc = origin.sub(self.center)
        b = 2.0 * oc.dot(direction)
        c = oc.dot(oc) - self.radius * self.radius
        disc = b * b - 4.0 * c
        if disc < 0:
            return -1.0
        t = (0.0 - b - sqrt(disc)) / 2.0
        if t < 0:
            return -1.0
        return t

def run():
    spheres = [
        Sphere(Vec(0.0, 0.0, -5.0), 1.0),
        Sphere(Vec(2.0, 1.0, -6.0), 1.5),
        Sphere(Vec(-2.0, -1.0, -4.0), 0.8),
    ]
    origin = Vec(0.0, 0.0, 0.0)
    hits = 0
    depth_sum = 0.0
    size = 14
    for py in range(size):
        for px in range(size):
            dx = 2.0 * px / size - 1.0
            dy = 2.0 * py / size - 1.0
            norm = sqrt(dx * dx + dy * dy + 1.0)
            direction = Vec(dx / norm, dy / norm, -1.0 / norm)
            best = -1.0
            for s in spheres:
                t = s.intersect(origin, direction)
                if t > 0 and (best < 0 or t < best):
                    best = t
            if best > 0:
                hits += 1
                depth_sum += best
    return depth_sum + hits
`

const srcStrings = `
def pipeline(n, salt):
    words = []
    for i in range(n):
        words.append('token' + str((i + salt) % 17))
    text = ' '.join(words)
    text = text.replace('token3', 'SUBST')
    upper = text.upper()
    parts = upper.split(' ')
    total = 0
    for p in parts:
        total += len(p)
        if p.startswith('SUB'):
            total += 10
        if p.endswith('7'):
            total += 3
    rejoined = '-'.join(parts)
    return total * 10 + len(rejoined) % 10 + text.find('SUBST')

def run():
    total = 0
    for round in range(6):
        total += pipeline(120, round)
    return total
`

const srcWordcount = `
def run():
    words = ['the', 'quick', 'brown', 'fox', 'jumps', 'over', 'the', 'lazy', 'dog', 'and', 'the', 'cat']
    counts = {}
    for round in range(40):
        for w in words:
            key = w
            if round % 3 == 0:
                key = w.upper()
            if key in counts:
                counts[key] += 1
            else:
                counts[key] = 1
    best = ''
    best_n = 0
    for k in counts:
        if counts[k] > best_n:
            best_n = counts[k]
            best = k
    return repr(best) + ' ' + str(best_n)
`

const srcDictStress = `
def run():
    d = {}
    total = 0
    for i in range(350):
        d['key' + str(i)] = i * 3
    for i in range(700):
        k = 'key' + str(i % 420)
        if k in d:
            total += d[k]
    for i in range(0, 350, 3):
        del d['key' + str(i)]
    for k in d:
        total += d[k] % 7
    return total
`

const srcBranchy = `
def run():
    seed = 123456789
    total = 0
    for i in range(1500):
        seed = (seed * 1103515245 + 12345) % 2147483648
        r = seed % 8
        if r == 0:
            total += 3
        elif r == 1:
            total -= 1
        elif r == 2:
            total += i % 5
        elif r == 3:
            total += 7
        elif r == 4:
            total -= i % 3
        elif r == 5:
            total += 11
        elif r == 6:
            total -= 2
        else:
            total += 1
        if seed % 13 == 0:
            total += seed % 97
    return total
`
