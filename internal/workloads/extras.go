package workloads

// Extended returns additional workloads beyond the canonical 16-benchmark
// suite used by the published experiments. They broaden coverage (dynamic
// programming, sieves, recursive serialization, state machines) for users
// composing their own studies; the experiment tables intentionally stay on
// the canonical suite so EXPERIMENTS.md remains stable.
func Extended() []Benchmark {
	return []Benchmark{
		{Name: "primes", Checksum: "3870", Class: ClassNumeric,
			Description: "sieve of Eratosthenes; list writes + inner strides", Source: srcPrimes},
		{Name: "knapsack", Checksum: "727", Class: ClassNumeric,
			Description: "0/1 knapsack dynamic program; 2D list indexing", Source: srcKnapsack},
		{Name: "lcs", Checksum: "'\\'19:wvusrqpomlihgfedcba\\''", Class: ClassMixed,
			Description: "longest common subsequence DP over strings", Source: srcLCS},
		{Name: "serialize", Checksum: "979", Class: ClassMixed,
			Description: "recursive JSON-style serialization of nested structures", Source: srcSerialize},
		{Name: "statemachine", Checksum: "14401", Class: ClassDict,
			Description: "token state machine driven by dict transition tables", Source: srcStateMachine},
	}
}

const srcPrimes = `
def sieve(n):
    is_prime = [True] * (n + 1)
    is_prime[0] = False
    is_prime[1] = False
    i = 2
    while i * i <= n:
        if is_prime[i]:
            j = i * i
            while j <= n:
                is_prime[j] = False
                j += i
        i += 1
    count = 0
    last = 0
    for k in range(n + 1):
        if is_prime[k]:
            count += 1
            last = k
    return count, last

def run():
    count, last = sieve(3000)
    return count * 3000 // last + count * 8
`

const srcKnapsack = `
def knapsack(weights, values, capacity):
    n = len(weights)
    table = []
    for i in range(n + 1):
        table.append([0] * (capacity + 1))
    for i in range(1, n + 1):
        w = weights[i - 1]
        v = values[i - 1]
        row = table[i]
        prev = table[i - 1]
        for c in range(capacity + 1):
            best = prev[c]
            if w <= c:
                cand = prev[c - w] + v
                if cand > best:
                    best = cand
            row[c] = best
    return table[n][capacity]

def run():
    seed = 24680
    weights = []
    values = []
    for i in range(18):
        seed = (seed * 1103515245 + 12345) % 2147483648
        weights.append(1 + seed % 12)
        seed = (seed * 1103515245 + 12345) % 2147483648
        values.append(1 + seed % 100)
    return knapsack(weights, values, 60)
`

const srcLCS = `
def lcs(a, b):
    n = len(a)
    m = len(b)
    table = []
    for i in range(n + 1):
        table.append([0] * (m + 1))
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            if a[i - 1] == b[j - 1]:
                table[i][j] = table[i - 1][j - 1] + 1
            elif table[i - 1][j] >= table[i][j - 1]:
                table[i][j] = table[i - 1][j]
            else:
                table[i][j] = table[i][j - 1]
    # Reconstruct.
    out = ''
    i = n
    j = m
    while i > 0 and j > 0:
        if a[i - 1] == b[j - 1]:
            out += a[i - 1]
            i -= 1
            j -= 1
        elif table[i - 1][j] >= table[i][j - 1]:
            i -= 1
        else:
            j -= 1
    return table[n][m], out

def run():
    a = 'abcdefghijklmnopqrstuvwxyz' * 1
    b = 'abcdefghilmopqrsnguvz' + 'zyxw'
    ln, seq = lcs(a + 'nop', b)
    return repr(str(ln) + ':' + seq)
`

const srcSerialize = `
def to_json(v):
    t = type_name(v)
    if t == 'int' or t == 'float':
        return str(v)
    if t == 'bool':
        return 'true' if v else 'false'
    if t == 'NoneType':
        return 'null'
    if t == 'str':
        return '"' + v.replace('"', '\\"') + '"'
    if t == 'list':
        parts = []
        for item in v:
            parts.append(to_json(item))
        return '[' + ','.join(parts) + ']'
    if t == 'dict':
        parts = []
        for k in v:
            parts.append(to_json(str(k)) + ':' + to_json(v[k]))
        return '{' + ','.join(parts) + '}'
    return '"?"'

def build(depth, width, seed):
    if depth == 0:
        return seed % 100
    node = {}
    for i in range(width):
        seed = (seed * 1103515245 + 12345) % 2147483648
        key = 'k' + str(i)
        if seed % 3 == 0:
            node[key] = build(depth - 1, width, seed)
        elif seed % 3 == 1:
            items = []
            for j in range(width):
                items.append(build(depth - 1, width, seed + j))
            node[key] = items
        else:
            node[key] = 'v' + str(seed % 1000)
    return node

def run():
    doc = build(3, 4, 9999)
    s = to_json(doc)
    total = 0
    for ch in s:
        if ch == '{' or ch == '[':
            total += 2
    return total + len(s) % 1000
`

const srcStateMachine = `
def make_table():
    # States: 0 start, 1 ident, 2 number, 3 space. Inputs: a=alpha, d=digit,
    # s=space, o=other.
    return {
        (0, 'a'): 1, (0, 'd'): 2, (0, 's'): 3, (0, 'o'): 0,
        (1, 'a'): 1, (1, 'd'): 1, (1, 's'): 3, (1, 'o'): 0,
        (2, 'a'): 0, (2, 'd'): 2, (2, 's'): 3, (2, 'o'): 0,
        (3, 'a'): 1, (3, 'd'): 2, (3, 's'): 3, (3, 'o'): 0,
    }

def classify(ch):
    o = ord(ch)
    if o >= 97 and o <= 122:
        return 'a'
    if o >= 48 and o <= 57:
        return 'd'
    if ch == ' ':
        return 's'
    return 'o'

def run():
    table = make_table()
    text = ('count 42 items plus 7 more; ok? yes x9 ' * 20).strip()
    state = 0
    idents = 0
    numbers = 0
    for ch in text:
        prev = state
        state = table[(state, classify(ch))]
        if prev != 1 and state == 1:
            idents += 1
        if prev != 2 and state == 2:
            numbers += 1
    return idents * 100 + numbers * 10 + state
`
