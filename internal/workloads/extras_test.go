package workloads

import (
	"testing"

	"repro/internal/vm"
)

func TestExtendedWorkloadsRunAndAgree(t *testing.T) {
	for _, b := range Extended() {
		interp := runBench(t, b, vm.ModeInterp)
		jit := runBench(t, b, vm.ModeJIT)
		t.Logf("%-13s checksum=%s", b.Name, interp)
		if interp != jit {
			t.Errorf("%s: engines disagree: %s vs %s", b.Name, interp, jit)
		}
		if b.Checksum != "" && interp != b.Checksum {
			t.Errorf("%s: checksum %s, want %s", b.Name, interp, b.Checksum)
		}
	}
}
