package workloads

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/analysis"
	"repro/internal/minipy"
)

// Compiled pairs a workload's verified bytecode with its static-analysis
// digest, both computed once per benchmark and cached together.
type Compiled struct {
	Code     *minipy.Code
	Analysis *analysis.Summary
}

// CodeCache is a concurrency-safe compile-once cache. The parallel harness
// hands one cache to every worker shard: reads take a shared lock, the
// first compile of a benchmark takes the exclusive lock, and the inventory
// listing is served under the same lock discipline — iterating the map
// without it is a data race the moment shards run concurrently.
type CodeCache struct {
	mu      sync.RWMutex
	entries map[string]Compiled
}

// NewCodeCache returns an empty cache.
func NewCodeCache() *CodeCache {
	return &CodeCache{entries: map[string]Compiled{}}
}

// Get returns the compiled entry for b, compiling and analyzing it on first
// use. hit reports whether the entry was already cached. Concurrent callers
// of the same uncompiled benchmark serialize on the first compile; callers
// of cached benchmarks only share a read lock.
func (c *CodeCache) Get(b Benchmark) (entry Compiled, hit bool, err error) {
	c.mu.RLock()
	entry, hit = c.entries[b.Name]
	c.mu.RUnlock()
	if hit {
		return entry, true, nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if entry, hit = c.entries[b.Name]; hit {
		return entry, true, nil
	}
	code, err := b.Compile()
	if err != nil {
		return Compiled{}, false, err
	}
	// Compile already ran analysis.Check (error-free guarantee); rerunning
	// the passes yields the full summary for report plumbing.
	rep, err := analysis.Analyze(code)
	if err != nil {
		return Compiled{}, false, fmt.Errorf("workload %s: %w", b.Name, err)
	}
	entry = Compiled{Code: code, Analysis: rep.Summarize()}
	c.entries[b.Name] = entry
	return entry, false, nil
}

// GetOpt returns the compiled entry for b at bytecode-optimization level
// opt (see minipy.Optimize). Level <= 0 is the plain entry. Optimized
// entries are cached under a level-qualified key and share the base entry's
// analysis summary — the summary describes the source program, which the
// optimizer does not change observably. The base code object is never
// mutated: every experiment arm holding a Compiled from Get still sees the
// compiler's output.
func (c *CodeCache) GetOpt(b Benchmark, opt int) (entry Compiled, hit bool, err error) {
	if opt <= 0 {
		return c.Get(b)
	}
	key := fmt.Sprintf("%s#opt%d", b.Name, opt)
	c.mu.RLock()
	entry, hit = c.entries[key]
	c.mu.RUnlock()
	if hit {
		return entry, true, nil
	}
	base, _, err := c.Get(b)
	if err != nil {
		return Compiled{}, false, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if entry, hit = c.entries[key]; hit {
		return entry, true, nil
	}
	facts := analysis.OptimizationFacts(base.Code)
	oc, err := minipy.Optimize(base.Code, opt, facts)
	if err != nil {
		return Compiled{}, false, fmt.Errorf("workload %s: optimize level %d: %w", b.Name, opt, err)
	}
	entry = Compiled{Code: oc, Analysis: base.Analysis}
	c.entries[key] = entry
	return entry, false, nil
}

// Inventory returns the names of every cached benchmark, sorted. The copy
// is taken under the read lock, so listing is safe while shards compile.
func (c *CodeCache) Inventory() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.entries))
	for name := range c.entries {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Len reports the number of cached benchmarks.
func (c *CodeCache) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entries)
}
