package workloads

import (
	"testing"

	"repro/internal/vm"
)

func runBench(t *testing.T, b Benchmark, mode vm.Mode) string {
	t.Helper()
	code, err := b.Compile()
	if err != nil {
		t.Fatalf("%s: compile: %v\nsource:\n%s", b.Name, err, b.Source)
	}
	engine := vm.New(vm.Config{Mode: mode, MaxSteps: 1 << 30})
	if _, err := engine.RunModule(code); err != nil {
		t.Fatalf("%s: setup: %v", b.Name, err)
	}
	v, err := engine.CallGlobal("run")
	if err != nil {
		t.Fatalf("%s: run: %v", b.Name, err)
	}
	return v.Repr()
}

func TestSyntheticVariantsCompileAndAgree(t *testing.T) {
	configs := []SyntheticConfig{
		{},
		{LoopIters: 200, CallEveryN: 5},
		{LoopIters: 300, DictOps: true},
		{LoopIters: 300, StrOps: true},
		{LoopIters: 300, BranchEntropy: 1},
		{LoopIters: 300, BranchEntropy: 0.3, Seed: 7},
		{LoopIters: 400, CallEveryN: 3, DictOps: true, StrOps: true, BranchEntropy: 0.5, Seed: 9},
	}
	for _, cfg := range configs {
		b := Synthetic(cfg)
		interp := runBench(t, b, vm.ModeInterp)
		jit := runBench(t, b, vm.ModeJIT)
		if interp != jit {
			t.Errorf("%s: engines disagree: %s vs %s", b.Name, interp, jit)
		}
	}
}

func TestSyntheticDeterministicPerConfig(t *testing.T) {
	a := Synthetic(SyntheticConfig{Seed: 1, LoopIters: 100})
	b := Synthetic(SyntheticConfig{Seed: 1, LoopIters: 100})
	if a.Source != b.Source {
		t.Fatal("same config must generate the same program")
	}
	c := Synthetic(SyntheticConfig{Seed: 2, LoopIters: 100})
	if a.Source == c.Source {
		t.Fatal("different seeds should generate different constants")
	}
}

func TestSyntheticBranchEntropyAffectsCost(t *testing.T) {
	// Under the JIT, guard-hostile branches must cost more cycles per
	// steady iteration than predictable ones.
	run := func(entropy float64) uint64 {
		b := Synthetic(SyntheticConfig{LoopIters: 800, BranchEntropy: entropy, Seed: 3})
		code, err := b.Compile()
		if err != nil {
			t.Fatal(err)
		}
		engine := vm.New(vm.Config{Mode: vm.ModeJIT, MaxSteps: 1 << 30})
		if _, err := engine.RunModule(code); err != nil {
			t.Fatal(err)
		}
		// Warm up, then measure a steady iteration.
		for i := 0; i < 5; i++ {
			if _, err := engine.CallGlobal("run"); err != nil {
				t.Fatal(err)
			}
		}
		before := engine.CountersSnapshot().Cycles
		if _, err := engine.CallGlobal("run"); err != nil {
			t.Fatal(err)
		}
		return engine.CountersSnapshot().Cycles - before
	}
	predictable := run(0)
	hostile := run(1)
	// The hostile variant executes an extra LCG statement per iteration, so
	// compare with ample headroom: hostile must cost at least 15% more.
	if float64(hostile) < 1.15*float64(predictable) {
		t.Fatalf("guard-hostile (%d cycles) should cost more than predictable (%d)",
			hostile, predictable)
	}
}
