package workloads

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// SyntheticConfig parameterizes the synthetic workload generator. The
// generator emits a MiniPy program whose dynamic behaviour is controlled
// along the axes the characterization cares about: loop trip counts,
// call density, dict/string pressure, and branch predictability.
type SyntheticConfig struct {
	// LoopIters is the hot loop trip count per run() call. Default 500.
	LoopIters int
	// CallEveryN inserts a helper-function call every N loop iterations
	// (0 = no calls).
	CallEveryN int
	// DictOps inserts a dict write+read per loop iteration when true.
	DictOps bool
	// StrOps inserts string concatenation work per loop iteration when true.
	StrOps bool
	// BranchEntropy in [0, 1]: 0 = perfectly predictable branch pattern,
	// 1 = data-dependent pseudo-random branches (JIT-guard hostile).
	BranchEntropy float64
	// Seed varies the generated constants so distinct programs differ.
	Seed uint64
}

// Synthetic generates a benchmark from the configuration. The program is a
// deterministic function of the config, and run() returns a checksum so the
// engines stay cross-validated.
func Synthetic(cfg SyntheticConfig) Benchmark {
	if cfg.LoopIters <= 0 {
		cfg.LoopIters = 500
	}
	rng := stats.NewRNG(cfg.Seed ^ 0x5EED)
	c1 := 1 + rng.Intn(97)
	c2 := 1 + rng.Intn(89)

	var sb strings.Builder
	sb.WriteString("def helper(x):\n    return x * ")
	fmt.Fprintf(&sb, "%d + %d\n\n", c1, c2)
	sb.WriteString("def run():\n")
	sb.WriteString("    total = 0\n")
	sb.WriteString("    seed = 123456789\n")
	if cfg.DictOps {
		sb.WriteString("    d = {}\n")
	}
	if cfg.StrOps {
		sb.WriteString("    s = ''\n")
	}
	fmt.Fprintf(&sb, "    for i in range(%d):\n", cfg.LoopIters)
	// Branch structure.
	switch {
	case cfg.BranchEntropy <= 0:
		sb.WriteString("        if i % 2 == 0:\n")
	case cfg.BranchEntropy >= 1:
		sb.WriteString("        seed = (seed * 1103515245 + 12345) % 2147483648\n")
		sb.WriteString("        if seed % 2 == 0:\n")
	default:
		// Mix: predictable most of the time, random otherwise.
		period := int(1/cfg.BranchEntropy) + 1
		sb.WriteString("        seed = (seed * 1103515245 + 12345) % 2147483648\n")
		fmt.Fprintf(&sb, "        if i %% %d == 0 and seed %% 2 == 0 or i %% %d != 0 and i %% 2 == 0:\n",
			period, period)
	}
	fmt.Fprintf(&sb, "            total += i %% %d\n", c1)
	sb.WriteString("        else:\n")
	fmt.Fprintf(&sb, "            total -= i %% %d\n", c2)
	if cfg.CallEveryN > 0 {
		fmt.Fprintf(&sb, "        if i %% %d == 0:\n", cfg.CallEveryN)
		sb.WriteString("            total += helper(i) % 1000\n")
	}
	if cfg.DictOps {
		sb.WriteString("        d[i % 64] = total\n")
		sb.WriteString("        total += d.get(i % 97, 0) % 13\n")
	}
	if cfg.StrOps {
		sb.WriteString("        if i % 32 == 0:\n")
		sb.WriteString("            s = s + str(total % 10)\n")
	}
	sb.WriteString("    return total")
	if cfg.StrOps {
		sb.WriteString(" + len(s)")
	}
	sb.WriteString("\n")

	name := fmt.Sprintf("synthetic-%d-%x", cfg.LoopIters, cfg.Seed)
	return Benchmark{
		Name:        name,
		Description: fmt.Sprintf("generated workload (%+v)", cfg),
		Class:       ClassMixed,
		Source:      sb.String(),
	}
}
