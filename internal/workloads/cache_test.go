package workloads

import (
	"sync"
	"testing"
)

func TestCodeCacheGetAndInventory(t *testing.T) {
	c := NewCodeCache()
	fib, ok := ByName("fib")
	if !ok {
		t.Fatal("fib missing")
	}
	e1, hit, err := c.Get(fib)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first Get must be a miss")
	}
	if e1.Code == nil || e1.Analysis == nil {
		t.Fatal("entry must carry code and analysis digest")
	}
	e2, hit, err := c.Get(fib)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second Get must hit")
	}
	if e2.Code != e1.Code {
		t.Fatal("hit must return the cached code object")
	}
	if got := c.Inventory(); len(got) != 1 || got[0] != "fib" {
		t.Fatalf("Inventory = %v", got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCodeCacheCompileErrorNotCached(t *testing.T) {
	c := NewCodeCache()
	bad := Benchmark{Name: "broken", Source: "def run(:\n"}
	if _, _, err := c.Get(bad); err == nil {
		t.Fatal("broken source must fail to compile")
	}
	if c.Len() != 0 {
		t.Fatal("failed compiles must not be cached")
	}
}

// TestCodeCacheConcurrentInventory hits the cache from concurrent shards —
// compiles of distinct benchmarks racing repeated inventory listings — and
// relies on the race detector (make verify runs go test -race) to prove the
// map iteration is lock-protected.
func TestCodeCacheConcurrentInventory(t *testing.T) {
	c := NewCodeCache()
	suite := Suite()
	const shards = 8
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		wg.Add(1)
		go func(shard int) {
			defer wg.Done()
			for i := 0; i < len(suite); i++ {
				b := suite[(shard+i)%len(suite)]
				if _, _, err := c.Get(b); err != nil {
					t.Errorf("shard %d: %v", shard, err)
					return
				}
				if names := c.Inventory(); len(names) == 0 {
					t.Errorf("shard %d: empty inventory after a Get", shard)
					return
				}
			}
		}(s)
	}
	wg.Wait()
	if c.Len() != len(suite) {
		t.Fatalf("cached %d benchmarks, want %d", c.Len(), len(suite))
	}
	inv := c.Inventory()
	if len(inv) != len(suite) {
		t.Fatalf("inventory lists %d benchmarks, want %d", len(inv), len(suite))
	}
	for i := 1; i < len(inv); i++ {
		if inv[i-1] >= inv[i] {
			t.Fatalf("inventory not sorted: %v", inv)
		}
	}
}
