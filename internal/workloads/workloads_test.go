package workloads

import (
	"testing"

	"repro/internal/minipy"
	"repro/internal/vm"
)

// runOn compiles and runs a benchmark once on the given engine, returning
// the repr of run()'s result.
func runOn(t *testing.T, b Benchmark, mode vm.Mode) string {
	t.Helper()
	code, err := b.Compile()
	if err != nil {
		t.Fatalf("%s: compile: %v", b.Name, err)
	}
	engine := vm.New(vm.Config{Mode: mode, MaxSteps: 1 << 30})
	if _, err := engine.RunModule(code); err != nil {
		t.Fatalf("%s: module setup: %v", b.Name, err)
	}
	v, err := engine.CallGlobal("run")
	if err != nil {
		t.Fatalf("%s: run(): %v", b.Name, err)
	}
	return v.Repr()
}

func TestSuiteCompilesAndRuns(t *testing.T) {
	suite := Suite()
	if len(suite) < 15 {
		t.Fatalf("suite has %d benchmarks, want >= 15", len(suite))
	}
	seen := map[string]bool{}
	for _, b := range suite {
		if seen[b.Name] {
			t.Errorf("duplicate benchmark name %q", b.Name)
		}
		seen[b.Name] = true
		if b.Description == "" || b.Class == "" {
			t.Errorf("%s: missing description or class", b.Name)
		}
		got := runOn(t, b, vm.ModeInterp)
		t.Logf("%-14s checksum=%s", b.Name, got)
		if b.Checksum != "" && got != b.Checksum {
			t.Errorf("%s: checksum %s, want %s", b.Name, got, b.Checksum)
		}
	}
}

func TestEnginesAgreeOnEveryBenchmark(t *testing.T) {
	for _, b := range Suite() {
		interp := runOn(t, b, vm.ModeInterp)
		jit := runOn(t, b, vm.ModeJIT)
		if interp != jit {
			t.Errorf("%s: engines disagree: interp=%s jit=%s", b.Name, interp, jit)
		}
	}
}

func TestRunIsRepeatableWithinInvocation(t *testing.T) {
	// run() must be callable repeatedly with a stable result — the harness
	// depends on that.
	for _, b := range Suite() {
		code, err := b.Compile()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		engine := vm.New(vm.Config{MaxSteps: 1 << 31})
		if _, err := engine.RunModule(code); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		var first minipy.Value
		for i := 0; i < 3; i++ {
			v, err := engine.CallGlobal("run")
			if err != nil {
				t.Fatalf("%s: run() #%d: %v", b.Name, i, err)
			}
			if i == 0 {
				first = v
			} else if v.Repr() != first.Repr() {
				t.Errorf("%s: run() not repeatable: %s vs %s", b.Name, first.Repr(), v.Repr())
				break
			}
		}
	}
}

func TestByName(t *testing.T) {
	if _, ok := ByName("fib"); !ok {
		t.Fatal("ByName(fib) not found")
	}
	if _, ok := ByName("no-such-benchmark"); ok {
		t.Fatal("ByName returned a bogus benchmark")
	}
}

func TestSuiteCostProfile(t *testing.T) {
	// Guard the suite's scale: every benchmark should execute a meaningful
	// but bounded number of bytecode ops per run() call, so full experiments
	// stay fast while timings remain measurable.
	for _, b := range Suite() {
		code, err := b.Compile()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		engine := vm.New(vm.Config{MaxSteps: 1 << 31})
		if _, err := engine.RunModule(code); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		before := engine.CountersSnapshot()
		if _, err := engine.CallGlobal("run"); err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		steps := engine.CountersSnapshot().Sub(before).Steps
		if steps < 5_000 {
			t.Errorf("%s: run() executes only %d ops — too small to measure", b.Name, steps)
		}
		if steps > 5_000_000 {
			t.Errorf("%s: run() executes %d ops — too slow for full experiments", b.Name, steps)
		}
		t.Logf("%-14s %8d ops/iteration", b.Name, steps)
	}
}
