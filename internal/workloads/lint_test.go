package workloads

import (
	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/minipy"
)

// intentionalFindings pins analyzer findings in shipped workloads that are
// deliberate. Keyed benchmark → rule → count; any finding not listed here
// fails the dogfood test, so a workload edit that introduces a new dead
// store or unreachable block must either fix it or pin it explicitly.
var intentionalFindings = map[string]map[string]int{}

// TestSuiteLintsClean runs the full static-analysis pipeline over every
// shipped workload (canonical suite + extended set) and asserts:
//   - zero error-severity findings (Compile would reject the workload);
//   - zero warnings and dead stores beyond the pinned intentional set;
//   - every workload earns a determinism certificate (the purity audit is
//     what licenses cross-run comparison of its results).
func TestSuiteLintsClean(t *testing.T) {
	all := append(append([]Benchmark{}, Suite()...), Extended()...)
	for _, b := range all {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			rep, err := b.Analyze()
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			pinned := intentionalFindings[b.Name]
			seen := map[string]int{}
			for _, d := range rep.Diagnostics {
				if d.Severity == analysis.Info {
					continue // unused loop vars are idiomatic in benchmarks
				}
				seen[d.Rule]++
				if seen[d.Rule] > pinned[d.Rule] {
					t.Errorf("unpinned finding: %s", d)
				}
			}
			for rule, want := range pinned {
				if seen[rule] != want {
					t.Errorf("pinned %d %s findings but analyzer reported %d (update intentionalFindings)",
						want, rule, seen[rule])
				}
			}
			if !rep.Certificate.Determinism.Certified {
				t.Errorf("determinism certificate refused: unresolved globals %v",
					rep.Certificate.Determinism.UnresolvedGlobals)
			}
			sum := rep.Summarize()
			if sum.TypedInstrPct <= 0 {
				t.Errorf("type inference produced no typed instructions (%.2f%%)", sum.TypedInstrPct)
			}
		})
	}
}

// TestSuiteLintsCleanOptimized re-runs the dogfood pass over every workload's
// -opt 2 and -opt 3 bytecode: the analyzer must decode superinstructions
// (CFG edges out of BINARY_JUMP_IF_FALSE, fused-load uses in liveness and
// definite assignment) and the certificate-gated rewrites' output, and
// still certify the optimized stream. A fusion, folding, or fact-gate bug
// that confuses the dataflow passes fails here before it can distort an
// A7/A8 arm.
func TestSuiteLintsCleanOptimized(t *testing.T) {
	all := append(append([]Benchmark{}, Suite()...), Extended()...)
	for _, b := range all {
		for _, level := range []int{2, 3} {
			b, level := b, level
			t.Run(fmt.Sprintf("%s/opt%d", b.Name, level), func(t *testing.T) {
				base, err := b.Compile()
				if err != nil {
					t.Fatalf("compile: %v", err)
				}
				opt, err := minipy.Optimize(base, level, analysis.OptimizationFacts(base))
				if err != nil {
					t.Fatalf("optimize: %v", err)
				}
				rep, err := analysis.Analyze(opt)
				if err != nil {
					t.Fatalf("analyze optimized: %v", err)
				}
				for _, d := range rep.Diagnostics {
					if d.Severity == analysis.Info {
						continue
					}
					// The optimizer may only remove findings (dead stores are
					// eliminated), never introduce them.
					if intentionalFindings[b.Name][d.Rule] == 0 {
						t.Errorf("optimized bytecode grew a finding: %s", d)
					}
				}
				if !rep.Certificate.Determinism.Certified {
					t.Errorf("optimized code lost its determinism certificate: unresolved globals %v",
						rep.Certificate.Determinism.UnresolvedGlobals)
				}
				if sum := rep.Summarize(); sum.TypedInstrPct <= 0 {
					t.Errorf("type inference over fused opcodes produced no typed instructions (%.2f%%)",
						sum.TypedInstrPct)
				}
			})
		}
	}
}
