package workloads

import (
	"testing"

	"repro/internal/analysis"
)

// intentionalFindings pins analyzer findings in shipped workloads that are
// deliberate. Keyed benchmark → rule → count; any finding not listed here
// fails the dogfood test, so a workload edit that introduces a new dead
// store or unreachable block must either fix it or pin it explicitly.
var intentionalFindings = map[string]map[string]int{}

// TestSuiteLintsClean runs the full static-analysis pipeline over every
// shipped workload (canonical suite + extended set) and asserts:
//   - zero error-severity findings (Compile would reject the workload);
//   - zero warnings and dead stores beyond the pinned intentional set;
//   - every workload earns a determinism certificate (the purity audit is
//     what licenses cross-run comparison of its results).
func TestSuiteLintsClean(t *testing.T) {
	all := append(append([]Benchmark{}, Suite()...), Extended()...)
	for _, b := range all {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			rep, err := b.Analyze()
			if err != nil {
				t.Fatalf("analyze: %v", err)
			}
			pinned := intentionalFindings[b.Name]
			seen := map[string]int{}
			for _, d := range rep.Diagnostics {
				if d.Severity == analysis.Info {
					continue // unused loop vars are idiomatic in benchmarks
				}
				seen[d.Rule]++
				if seen[d.Rule] > pinned[d.Rule] {
					t.Errorf("unpinned finding: %s", d)
				}
			}
			for rule, want := range pinned {
				if seen[rule] != want {
					t.Errorf("pinned %d %s findings but analyzer reported %d (update intentionalFindings)",
						want, rule, seen[rule])
				}
			}
			if !rep.Certificate.Certified {
				t.Errorf("determinism certificate refused: unresolved globals %v",
					rep.Certificate.UnresolvedGlobals)
			}
			sum := rep.Summarize()
			if sum.TypedInstrPct <= 0 {
				t.Errorf("type inference produced no typed instructions (%.2f%%)", sum.TypedInstrPct)
			}
		})
	}
}
