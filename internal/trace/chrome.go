package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The Chrome trace-event JSON object format, the lingua franca of timeline
// viewers: Perfetto, chrome://tracing, and speedscope all load it.
// Timestamps and durations are microseconds. Reference:
// "Trace Event Format" (Google, trace-viewer docs).

// chromeEvent is one entry of the traceEvents array.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  *float64          `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"` // instant scope
	Args map[string]string `json:"args,omitempty"`
}

// chromeFile is the top-level JSON object.
type chromeFile struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// Export writes the recorded events as Chrome trace-event JSON. Events are
// sorted by timestamp (stable, so equal-timestamp events keep record
// order), which viewers require for correct nesting.
func (t *Tracer) Export(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("trace: cannot export a nil tracer")
	}
	t.mu.Lock()
	events := make([]Event, len(t.events))
	copy(events, t.events)
	meta := make(map[string]string, len(t.meta))
	for k, v := range t.meta {
		meta[k] = v
	}
	t.mu.Unlock()

	sort.SliceStable(events, func(i, j int) bool { return events[i].TS < events[j].TS })
	out := chromeFile{
		TraceEvents:     make([]chromeEvent, 0, len(events)),
		DisplayTimeUnit: "ms",
		OtherData:       meta,
	}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat,
			Ph:   e.Phase,
			TS:   float64(e.TS.Nanoseconds()) / 1e3,
			PID:  1,
			TID:  1,
			Args: e.Args,
		}
		if e.Phase == "X" {
			d := float64(e.Dur.Nanoseconds()) / 1e3
			ce.Dur = &d
		}
		if e.Phase == "i" {
			ce.S = "t" // thread-scoped instant
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// Validate parses data as Chrome trace-event JSON and checks the invariants
// the exporter guarantees: every event has a name, a known phase, a
// non-negative microsecond timestamp, complete events carry a non-negative
// duration, and timestamps are monotonically non-decreasing. It returns the
// parsed event count so callers (the smoke target, tests) can assert
// non-emptiness.
func Validate(data []byte) (events int, err error) {
	var f chromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return 0, fmt.Errorf("trace: invalid JSON: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return 0, fmt.Errorf("trace: no events")
	}
	prev := -1.0
	for i, e := range f.TraceEvents {
		if e.Name == "" {
			return 0, fmt.Errorf("trace: event %d has no name", i)
		}
		switch e.Ph {
		case "X":
			if e.Dur == nil || *e.Dur < 0 {
				return 0, fmt.Errorf("trace: complete event %d (%s) has bad duration", i, e.Name)
			}
		case "i":
			// instant events carry no duration
		case "M":
			// metadata events are permitted though the exporter emits none
		default:
			return 0, fmt.Errorf("trace: event %d (%s) has unknown phase %q", i, e.Name, e.Ph)
		}
		if e.TS < 0 {
			return 0, fmt.Errorf("trace: event %d (%s) has negative timestamp", i, e.Name)
		}
		if e.TS < prev {
			return 0, fmt.Errorf("trace: event %d (%s) breaks timestamp ordering", i, e.Name)
		}
		prev = e.TS
	}
	return len(f.TraceEvents), nil
}

// ValidateSpans checks that the trace contains at least one complete span
// for each of the given categories — the harness contract tests use this to
// assert the suite/benchmark/invocation/iteration hierarchy is present.
func ValidateSpans(data []byte, categories ...string) error {
	var f chromeFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("trace: invalid JSON: %w", err)
	}
	seen := map[string]bool{}
	for _, e := range f.TraceEvents {
		if e.Ph == "X" {
			seen[e.Cat] = true
		}
	}
	for _, cat := range categories {
		if !seen[cat] {
			return fmt.Errorf("trace: no complete span with category %q", cat)
		}
	}
	return nil
}
