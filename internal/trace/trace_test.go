package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// fakeClock returns a monotonically advancing offset function plus a
// stepper, for deterministic timestamps.
func fakeClock() (now func() time.Duration, advance func(time.Duration)) {
	var t time.Duration
	return func() time.Duration { return t }, func(d time.Duration) { t += d }
}

func TestNilTracerIsNoOp(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin(CatSuite, "x")
	sp.SetArg("k", "v")
	sp.End()
	tr.Instant(CatSupervisor, "retry")
	tr.SetMeta("k", "v")
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer must record nothing")
	}
	if err := tr.Export(&bytes.Buffer{}); err == nil {
		t.Fatal("exporting a nil tracer must error")
	}
}

func TestSpanHierarchyAndExport(t *testing.T) {
	now, advance := fakeClock()
	tr := NewWithClock(now)
	tr.SetMeta("producer", "test 0.0.0")

	suite := tr.Begin(CatSuite, "suite")
	advance(time.Millisecond)
	bench := tr.Begin(CatBenchmark, "fib/interp", "benchmark", "fib")
	advance(time.Millisecond)
	inv := tr.Begin(CatInvocation, "invocation 0", "index", "0")
	advance(time.Millisecond)
	iter := tr.Begin(CatIteration, "iteration 0")
	advance(500 * time.Microsecond)
	phase := tr.Begin(CatPhase, "run()")
	advance(250 * time.Microsecond)
	phase.End()
	iter.End()
	tr.Instant(CatSupervisor, "retry", "invocation", "0", "attempt", "1")
	inv.End()
	bench.End()
	suite.End()

	if tr.Len() != 6 {
		t.Fatalf("want 6 events, got %d", tr.Len())
	}

	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := Validate(buf.Bytes())
	if err != nil {
		t.Fatalf("exported trace fails validation: %v", err)
	}
	if n != 6 {
		t.Fatalf("validator saw %d events, want 6", n)
	}
	if err := ValidateSpans(buf.Bytes(),
		CatSuite, CatBenchmark, CatInvocation, CatIteration, CatPhase); err != nil {
		t.Fatal(err)
	}

	// Spot-check the schema directly: the suite span must cover everything.
	var f struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Cat  string            `json:"cat"`
			Ph   string            `json:"ph"`
			TS   float64           `json:"ts"`
			Dur  float64           `json:"dur"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if f.OtherData["producer"] != "test 0.0.0" {
		t.Fatalf("metadata lost: %+v", f.OtherData)
	}
	byName := map[string]float64{}
	for _, e := range f.TraceEvents {
		if e.Ph == "X" {
			byName[e.Name] = e.Dur
		}
		if e.Name == "retry" {
			if e.Ph != "i" || e.Args["attempt"] != "1" {
				t.Fatalf("instant event malformed: %+v", e)
			}
		}
	}
	if byName["suite"] < byName["fib/interp"] || byName["fib/interp"] < byName["invocation 0"] {
		t.Fatalf("span durations do not nest: %v", byName)
	}
	if byName["run()"] != 250 { // µs
		t.Fatalf("phase duration = %v µs, want 250", byName["run()"])
	}
}

func TestValidateRejectsMalformedTraces(t *testing.T) {
	cases := map[string]string{
		"not json":        `{"traceEvents": [}`,
		"empty":           `{"traceEvents": []}`,
		"nameless":        `{"traceEvents": [{"ph":"i","ts":0}]}`,
		"unknown phase":   `{"traceEvents": [{"name":"x","ph":"Q","ts":0}]}`,
		"no duration":     `{"traceEvents": [{"name":"x","ph":"X","ts":0}]}`,
		"negative ts":     `{"traceEvents": [{"name":"x","ph":"i","ts":-1}]}`,
		"order violation": `{"traceEvents": [{"name":"a","ph":"i","ts":5},{"name":"b","ph":"i","ts":1}]}`,
	}
	for label, data := range cases {
		if _, err := Validate([]byte(data)); err == nil {
			t.Errorf("%s: Validate accepted malformed trace", label)
		}
	}
}

func TestExportSortsByTimestamp(t *testing.T) {
	now, advance := fakeClock()
	tr := NewWithClock(now)
	// A span that ends late is recorded after later-starting instants; the
	// exporter must still order output by start timestamp.
	outer := tr.Begin(CatBenchmark, "outer")
	advance(10 * time.Millisecond)
	tr.Instant(CatSupervisor, "mid")
	advance(10 * time.Millisecond)
	outer.End()
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(buf.Bytes()); err != nil {
		t.Fatalf("out-of-order export: %v", err)
	}
}

func TestConcurrentRecording(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sp := tr.Begin(CatInvocation, "inv")
				tr.Instant(CatSupervisor, "tick")
				sp.End()
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 8*200 {
		t.Fatalf("lost events under concurrency: %d", tr.Len())
	}
	var buf bytes.Buffer
	if err := tr.Export(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Validate(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}
