// Package trace is a low-overhead span tracer for the benchmarking
// harness. It records the experiment hierarchy (suite → benchmark →
// invocation → iteration → phase) as duration spans and supervisor
// activity (retries, injected faults, budget aborts, checkpoints) as
// instant events, all on the host's monotonic clock, and exports the
// whole run as Chrome trace-event JSON so it opens directly in Perfetto
// or chrome://tracing.
//
// Every method is a no-op on a nil *Tracer, so instrumented code needs no
// guards: the disabled path is a single nil check.
package trace

import (
	"sync"
	"time"
)

// Category names used by the harness. Exported so tests and external
// consumers filter on the same strings the instrumentation emits.
const (
	CatSuite      = "suite"
	CatBenchmark  = "benchmark"
	CatInvocation = "invocation"
	CatIteration  = "iteration"
	CatPhase      = "phase"
	CatSupervisor = "supervisor"
	// CatWorker spans cover one shard's lifetime in a parallel run; their
	// invocation child spans carry the shard id in a "worker" argument.
	CatWorker = "worker"
	// CatTrack instants are benchtrack history operations: snapshot
	// ingests, changepoint alerts, and acknowledgements.
	CatTrack = "track"
)

// Event is one recorded trace event. TS and Dur are offsets from the
// tracer's start on the monotonic clock, so events are immune to wall-time
// steps and sort correctly even across NTP adjustments.
type Event struct {
	Name  string
	Cat   string
	Phase string // "X" complete span, "i" instant event
	TS    time.Duration
	Dur   time.Duration // zero for instants
	Args  map[string]string
}

// Tracer accumulates events in memory. It is safe for concurrent use: the
// supervisor may fan invocations out across goroutines.
type Tracer struct {
	mu     sync.Mutex
	start  time.Time
	events []Event
	meta   map[string]string
	// now is injectable for deterministic tests; it returns the offset
	// since start.
	now func() time.Duration
}

// New returns a tracer whose clock starts now.
func New() *Tracer {
	t := &Tracer{start: time.Now(), meta: map[string]string{}}  //benchlint:allow clock
	t.now = func() time.Duration { return time.Since(t.start) } //benchlint:allow clock
	return t
}

// NewWithClock returns a tracer driven by an explicit monotonic offset
// function (tests use this for reproducible timestamps).
func NewWithClock(now func() time.Duration) *Tracer {
	return &Tracer{start: time.Now(), meta: map[string]string{}, now: now} //benchlint:allow clock
}

// SetMeta records run-level metadata (producer, benchmark set, seed…)
// exported in the trace file's otherData section.
func (t *Tracer) SetMeta(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.meta[key] = value
	t.mu.Unlock()
}

// Span is an open duration span. End closes it and records the event; the
// zero Span is a no-op, matching the nil-tracer contract.
type Span struct {
	t     *Tracer
	name  string
	cat   string
	begin time.Duration
	args  map[string]string
}

// Begin opens a span. Args are attached at End time via SetArg or passed
// here as alternating key, value pairs.
func (t *Tracer) Begin(cat, name string, kv ...string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, cat: cat, begin: t.now(), args: kvMap(kv)}
}

// SetArg attaches one argument to the span before End.
func (s *Span) SetArg(key, value string) {
	if s.t == nil {
		return
	}
	if s.args == nil {
		s.args = map[string]string{}
	}
	s.args[key] = value
}

// End closes the span and records it.
func (s Span) End() {
	if s.t == nil {
		return
	}
	end := s.t.now()
	s.t.record(Event{
		Name: s.name, Cat: s.cat, Phase: "X",
		TS: s.begin, Dur: end - s.begin, Args: s.args,
	})
}

// Instant records a zero-duration event (a retry, a fault injection, a
// checkpoint save).
func (t *Tracer) Instant(cat, name string, kv ...string) {
	if t == nil {
		return
	}
	t.record(Event{Name: name, Cat: cat, Phase: "i", TS: t.now(), Args: kvMap(kv)})
}

func (t *Tracer) record(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of everything recorded so far.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	return out
}

// Len reports the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// kvMap folds alternating key, value strings into a map (nil when empty;
// a trailing unpaired key is dropped).
func kvMap(kv []string) map[string]string {
	if len(kv) < 2 {
		return nil
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}
