// Package metrics is a dependency-free metrics registry for harness
// self-telemetry: counters, gauges, and fixed-bucket histograms, with a
// deterministic snapshot (sorted, JSON-stable) and a Prometheus-style text
// exposition. The paper's methodology requires that reported numbers be
// accompanied by the measurement apparatus's own overhead — timer
// resolution, GC interference, retry/cache activity — and this package is
// where that accounting lives.
//
// A nil *Registry is inert: every lookup returns a nil instrument and every
// instrument method on nil is a no-op, so instrumented code paths need no
// enable/disable plumbing.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry holds named instruments. Instrument constructors are idempotent:
// asking for an existing name returns the existing instrument (names are
// namespaced per kind).
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	help       map[string]string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		help:       map[string]string{},
	}
}

// Counter returns the named monotonically-increasing counter, creating it
// on first use. Nil registries return a nil (inert) counter.
func (r *Registry) Counter(name, help string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
		r.help[name] = help
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
		r.help[name] = help
	}
	return g
}

// Histogram returns the named fixed-bucket histogram, creating it on first
// use with the given upper bounds (sorted ascending; an implicit +Inf
// bucket catches the rest). Buckets are fixed at creation: later calls with
// different bounds return the existing histogram unchanged.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		bs := append([]float64(nil), buckets...)
		sort.Float64s(bs)
		h = &Histogram{bounds: bs, counts: make([]uint64, len(bs)+1)}
		r.histograms[name] = h
		r.help[name] = help
	}
	return h
}

// Counter is a monotonically-increasing uint64.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable float64.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the current value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets and tracks sum/count.
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // upper bounds, ascending; counts has one extra +Inf slot
	counts []uint64
	sum    float64
	count  uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.count++
}

// CounterPoint is one counter in a snapshot.
type CounterPoint struct {
	Name  string `json:"name"`
	Help  string `json:"help,omitempty"`
	Value uint64 `json:"value"`
}

// GaugePoint is one gauge in a snapshot.
type GaugePoint struct {
	Name  string  `json:"name"`
	Help  string  `json:"help,omitempty"`
	Value float64 `json:"value"`
}

// HistogramPoint is one histogram in a snapshot. Buckets are cumulative
// (each includes all lower buckets), matching the exposition convention.
type HistogramPoint struct {
	Name    string    `json:"name"`
	Help    string    `json:"help,omitempty"`
	Bounds  []float64 `json:"bounds"`
	Buckets []uint64  `json:"buckets"` // cumulative; last entry == Count
	Sum     float64   `json:"sum"`
	Count   uint64    `json:"count"`
}

// Snapshot is a point-in-time copy of every instrument, sorted by name so
// JSON and text output are deterministic.
type Snapshot struct {
	Counters   []CounterPoint   `json:"counters,omitempty"`
	Gauges     []GaugePoint     `json:"gauges,omitempty"`
	Histograms []HistogramPoint `json:"histograms,omitempty"`
}

// Snapshot captures the registry. A nil registry yields a zero snapshot.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for name, c := range r.counters {
		s.Counters = append(s.Counters, CounterPoint{Name: name, Help: r.help[name], Value: c.Value()})
	}
	for name, g := range r.gauges {
		s.Gauges = append(s.Gauges, GaugePoint{Name: name, Help: r.help[name], Value: g.Value()})
	}
	for name, h := range r.histograms {
		h.mu.Lock()
		hp := HistogramPoint{
			Name:   name,
			Help:   r.help[name],
			Bounds: append([]float64(nil), h.bounds...),
			Sum:    h.sum,
			Count:  h.count,
		}
		var cum uint64
		for _, c := range h.counts {
			cum += c
			hp.Buckets = append(hp.Buckets, cum)
		}
		h.mu.Unlock()
		s.Histograms = append(s.Histograms, hp)
	}
	sort.Slice(s.Counters, func(i, j int) bool { return s.Counters[i].Name < s.Counters[j].Name })
	sort.Slice(s.Gauges, func(i, j int) bool { return s.Gauges[i].Name < s.Gauges[j].Name })
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// Counter returns the snapshotted value of a counter (0 when absent).
func (s Snapshot) Counter(name string) uint64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// Gauge returns the snapshotted value of a gauge (0, false when absent).
func (s Snapshot) Gauge(name string) (float64, bool) {
	for _, g := range s.Gauges {
		if g.Name == name {
			return g.Value, true
		}
	}
	return 0, false
}

// WriteText renders the snapshot in a Prometheus-style text exposition:
// "# HELP" comments followed by name value lines, histograms expanded into
// cumulative _bucket{le=...} series plus _sum and _count.
func (s Snapshot) WriteText(w io.Writer) error {
	for _, c := range s.Counters {
		if err := writeMetricHeader(w, c.Name, c.Help, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", c.Name, c.Value); err != nil {
			return err
		}
	}
	for _, g := range s.Gauges {
		if err := writeMetricHeader(w, g.Name, g.Help, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", g.Name, g.Value); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		if err := writeMetricHeader(w, h.Name, h.Help, "histogram"); err != nil {
			return err
		}
		for i, b := range h.Bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%g\"} %d\n", h.Name, b, h.Buckets[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.Name, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", h.Name, h.Sum, h.Name, h.Count); err != nil {
			return err
		}
	}
	return nil
}

func writeMetricHeader(w io.Writer, name, help, kind string) error {
	if help != "" {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, help); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
	return err
}
