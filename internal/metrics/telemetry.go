package metrics

import (
	"runtime"
	"time"
)

// Self-telemetry: the measurement apparatus measuring itself. Timer
// calibration quantifies what the host clock can resolve and what one
// timestamp costs; GC sampling quantifies how much the Go runtime
// interfered with an invocation. Both ride in the metrics snapshot so every
// archived result carries its own error bars on the apparatus.

// Metric names exported for tests and downstream consumers.
const (
	TimerResolutionNs = "harness_timer_resolution_ns"
	TimerOverheadNs   = "harness_timer_overhead_ns"

	GCPauseTotalNs  = "harness_gc_pause_ns_total"
	GCCycles        = "harness_gc_cycles_total"
	HeapAllocBytes  = "harness_heap_alloc_bytes"
	InvocationAlloc = "harness_invocation_alloc_bytes"
	InvocationHost  = "harness_invocation_host_seconds"
)

// Calibration is the measured timer characteristics.
type Calibration struct {
	// ResolutionNs is the smallest positive delta observed between
	// consecutive clock readings (the effective tick).
	ResolutionNs float64
	// OverheadNs is the mean cost of one clock reading.
	OverheadNs float64
}

// CalibrateTimer measures the host monotonic clock and, when reg is
// non-nil, records the results as gauges. The paper's methodology requires
// knowing the timer floor before trusting sub-microsecond effects.
func CalibrateTimer(reg *Registry) Calibration {
	cal := CalibrateTimerQuick(2000, 4096)
	reg.Gauge(TimerResolutionNs, "smallest observed positive monotonic-clock delta").Set(cal.ResolutionNs)
	reg.Gauge(TimerOverheadNs, "mean cost of one clock reading").Set(cal.OverheadNs)
	return cal
}

// CalibrateTimerQuick measures the clock with caller-chosen probe counts
// and no registry side effects. The parallel harness runs one per worker
// shard, concurrently, as its interference guard: dispersion across the
// shards' measurements is direct evidence of cross-shard contention.
func CalibrateTimerQuick(resolutionProbes, overheadCalls int) Calibration {
	if resolutionProbes <= 0 {
		resolutionProbes = 256
	}
	if overheadCalls <= 0 {
		overheadCalls = 1024
	}
	minDelta := time.Duration(1<<63 - 1)
	prev := time.Now() //benchlint:allow clock
	for i := 0; i < resolutionProbes; i++ {
		now := time.Now() //benchlint:allow clock
		if d := now.Sub(prev); d > 0 && d < minDelta {
			minDelta = d
		}
		prev = now
	}
	begin := time.Now() //benchlint:allow clock
	for i := 0; i < overheadCalls; i++ {
		_ = time.Now() //benchlint:allow clock
	}
	elapsed := time.Since(begin) //benchlint:allow clock

	return Calibration{
		ResolutionNs: float64(minDelta.Nanoseconds()),
		OverheadNs:   float64(elapsed.Nanoseconds()) / float64(overheadCalls),
	}
}

// GCSampler brackets a region of work (one invocation) and attributes the
// Go runtime's GC and allocation activity inside it to the registry. Usage:
//
//	s := metrics.StartGCSample(reg)
//	... run the invocation ...
//	s.Stop()
//
// A nil-registry sampler skips ReadMemStats entirely — the stats read stops
// the world briefly, so the disabled path must not pay it.
type GCSampler struct {
	reg    *Registry
	before runtime.MemStats
	begin  time.Time
}

// StartGCSample snapshots runtime memory state at region entry.
func StartGCSample(reg *Registry) *GCSampler {
	if reg == nil {
		return nil
	}
	s := &GCSampler{reg: reg, begin: time.Now()} //benchlint:allow clock
	runtime.ReadMemStats(&s.before)
	return s
}

// Stop snapshots region exit and records the deltas: GC pause time, GC
// cycles, bytes allocated, and host wall time of the region.
func (s *GCSampler) Stop() {
	if s == nil {
		return
	}
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	host := time.Since(s.begin).Seconds() //benchlint:allow clock

	s.reg.Counter(GCPauseTotalNs, "GC stop-the-world pause time inside invocations").
		Add(after.PauseTotalNs - s.before.PauseTotalNs)
	s.reg.Counter(GCCycles, "GC cycles completed inside invocations").
		Add(uint64(after.NumGC - s.before.NumGC))
	s.reg.Gauge(HeapAllocBytes, "live heap bytes after last invocation").
		Set(float64(after.HeapAlloc))
	s.reg.Histogram(InvocationAlloc, "bytes allocated per invocation",
		[]float64{1 << 10, 64 << 10, 1 << 20, 16 << 20, 256 << 20}).
		Observe(float64(after.TotalAlloc - s.before.TotalAlloc))
	s.reg.Histogram(InvocationHost, "host wall seconds per invocation",
		[]float64{1e-4, 1e-3, 1e-2, 1e-1, 1, 10}).
		Observe(host)
}
