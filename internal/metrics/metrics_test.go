package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.Counter("c", "").Inc()
	r.Gauge("g", "").Set(3)
	r.Histogram("h", "", []float64{1}).Observe(0.5)
	if s := r.Snapshot(); len(s.Counters)+len(s.Gauges)+len(s.Histograms) != 0 {
		t.Fatal("nil registry recorded something")
	}
	if StartGCSample(nil) != nil {
		t.Fatal("nil-registry sampler must be nil")
	}
	(*GCSampler)(nil).Stop() // must not panic
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("runs_total", "total runs")
	c.Inc()
	c.Add(4)
	if r.Counter("runs_total", "ignored") != c {
		t.Fatal("counter lookup is not idempotent")
	}
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}

	g := r.Gauge("temperature", "")
	g.Set(36.6)
	if g.Value() != 36.6 {
		t.Fatalf("gauge = %v", g.Value())
	}

	h := r.Histogram("latency", "seconds", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	s := r.Snapshot()
	if len(s.Histograms) != 1 {
		t.Fatal("histogram missing from snapshot")
	}
	hp := s.Histograms[0]
	// Cumulative buckets: ≤0.1 → 1, ≤1 → 3, ≤10 → 4; +Inf (Count) → 5.
	want := []uint64{1, 3, 4, 5}
	for i, w := range want {
		if hp.Buckets[i] != w {
			t.Fatalf("bucket[%d] = %d, want %d (%+v)", i, hp.Buckets[i], w, hp)
		}
	}
	if hp.Count != 5 || hp.Sum != 56.05 {
		t.Fatalf("sum/count wrong: %+v", hp)
	}
}

func TestSnapshotDeterministicAndJSONStable(t *testing.T) {
	build := func() Snapshot {
		r := NewRegistry()
		// Insert in shuffled order; snapshot must sort.
		r.Counter("z_last", "").Add(1)
		r.Counter("a_first", "").Add(2)
		r.Gauge("m_gauge", "").Set(7)
		r.Histogram("k_hist", "", []float64{1, 2}).Observe(1.5)
		return r.Snapshot()
	}
	j1, err := json.Marshal(build())
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := json.Marshal(build())
	if !bytes.Equal(j1, j2) {
		t.Fatalf("snapshot JSON not deterministic:\n%s\n%s", j1, j2)
	}
	if idx := bytes.Index(j1, []byte("a_first")); idx < 0 || idx > bytes.Index(j1, []byte("z_last")) {
		t.Fatalf("counters not sorted: %s", j1)
	}
}

func TestWriteTextExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("harness_retries_total", "retries").Add(3)
	r.Gauge("harness_timer_overhead_ns", "ns per clock read").Set(25)
	r.Histogram("inv_seconds", "", []float64{0.5}).Observe(0.2)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE harness_retries_total counter",
		"harness_retries_total 3",
		"# HELP harness_timer_overhead_ns ns per clock read",
		"harness_timer_overhead_ns 25",
		"inv_seconds_bucket{le=\"0.5\"} 1",
		"inv_seconds_bucket{le=\"+Inf\"} 1",
		"inv_seconds_sum 0.2",
		"inv_seconds_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Counter("c", "").Inc()
				r.Histogram("h", "", []float64{10, 100}).Observe(float64(i % 200))
			}
		}()
	}
	wg.Wait()
	s := r.Snapshot()
	if s.Counter("c") != 8000 {
		t.Fatalf("lost counter increments: %d", s.Counter("c"))
	}
	if s.Histograms[0].Count != 8000 {
		t.Fatalf("lost observations: %d", s.Histograms[0].Count)
	}
}

func TestCalibrateTimer(t *testing.T) {
	r := NewRegistry()
	cal := CalibrateTimer(r)
	if cal.ResolutionNs <= 0 {
		t.Fatalf("resolution must be positive: %v", cal.ResolutionNs)
	}
	if cal.OverheadNs <= 0 || cal.OverheadNs > 1e6 {
		t.Fatalf("implausible timer overhead: %v ns", cal.OverheadNs)
	}
	s := r.Snapshot()
	if v, ok := s.Gauge(TimerResolutionNs); !ok || v != cal.ResolutionNs {
		t.Fatal("resolution gauge missing")
	}
	if v, ok := s.Gauge(TimerOverheadNs); !ok || v != cal.OverheadNs {
		t.Fatal("overhead gauge missing")
	}
}

func TestGCSampler(t *testing.T) {
	r := NewRegistry()
	s := StartGCSample(r)
	// Allocate noticeably so the invocation-alloc histogram sees it.
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 32<<10))
	}
	_ = sink
	s.Stop()
	snap := r.Snapshot()
	if v, ok := snap.Gauge(HeapAllocBytes); !ok || v <= 0 {
		t.Fatal("heap gauge not recorded")
	}
	var found bool
	for _, h := range snap.Histograms {
		if h.Name == InvocationAlloc {
			found = true
			if h.Count != 1 || h.Sum < float64(64*32<<10) {
				t.Fatalf("alloc histogram implausible: %+v", h)
			}
		}
	}
	if !found {
		t.Fatal("invocation alloc histogram missing")
	}
}
