package controlapi

import (
	"encoding/json"
	"sync"
)

// Event is one entry in a campaign's progress stream. Events are
// sequence-numbered from 0 so a client that reconnects with Last-Event-ID
// resumes exactly where it left off — the stream is an append-only log,
// not a lossy broadcast.
type Event struct {
	// Seq is the event's position in the campaign stream.
	Seq int `json:"seq"`
	// Type tags the payload: "state", "benchmark", "trace".
	Type string `json:"type"`
	// Data is the type-specific JSON payload.
	Data json.RawMessage `json:"data"`
}

// Event types emitted by the daemon.
const (
	// EventState carries a StateChange whenever the campaign's lifecycle
	// state moves; the terminal one ends the stream.
	EventState = "state"
	// EventBenchmark carries a BenchmarkProgress as each benchmark of the
	// campaign starts and finishes.
	EventBenchmark = "benchmark"
	// EventTrace carries one harness Observer span/instant (trace.Event
	// JSON) from the campaign's tracer — the PR 2 observability stream
	// surfaced over the wire.
	EventTrace = "trace"
)

// StateChange is the payload of EventState.
type StateChange struct {
	ID    string `json:"id"`
	State State  `json:"state"`
	// Exit is the taxonomy exit code of a terminal state (0 until then).
	Exit int `json:"exit_code"`
	// Error describes a failed/degraded/cancelled outcome.
	Error string `json:"error,omitempty"`
}

// BenchmarkProgress is the payload of EventBenchmark.
type BenchmarkProgress struct {
	ID        string `json:"id"`
	Benchmark string `json:"benchmark"`
	// Index/Total locate the benchmark within the campaign.
	Index int `json:"index"`
	Total int `json:"total"`
	// Done is false when the benchmark starts, true when it finishes.
	Done bool `json:"done"`
}

// eventLog is a campaign's append-only event history plus the condition
// subscribers block on. Campaigns are bounded (tens of trace events), so
// the log keeps everything; a reconnecting client can always replay.
type eventLog struct {
	mu     sync.Mutex
	cond   *sync.Cond
	events []Event
	closed bool
}

func newEventLog() *eventLog {
	l := &eventLog{}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// append adds one typed event; payload must marshal (programmer error if
// not, so it panics rather than silently dropping progress).
func (l *eventLog) append(typ string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		panic("controlapi: unmarshalable event payload: " + err.Error())
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return
	}
	l.events = append(l.events, Event{Seq: len(l.events), Type: typ, Data: data})
	l.cond.Broadcast()
}

// close marks the stream complete and wakes all subscribers.
func (l *eventLog) close() {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	l.cond.Broadcast()
}

// next blocks until an event with seq >= from exists (returning it), the
// log closes with no further events, or stop reports true (both return
// ok=false). Callers watching a request context arrange for wake() when it
// ends so the Wait loop re-checks stop.
func (l *eventLog) next(from int, stop func() bool) (Event, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if stop != nil && stop() {
			return Event{}, false
		}
		if from < len(l.events) {
			return l.events[from], true
		}
		if l.closed {
			return Event{}, false
		}
		l.cond.Wait()
	}
}

// wake re-runs every blocked next loop (used when a subscriber's request
// context ends — the condition itself lives outside the log).
func (l *eventLog) wake() {
	l.mu.Lock()
	l.cond.Broadcast()
	l.mu.Unlock()
}
