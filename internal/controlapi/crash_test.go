package controlapi

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"
)

// TestCrashRecovery is the kill -9 drill: a daemon dies mid-campaign at a
// deliberate crash point (harness.SupervisorOptions.CrashAfter, the same
// hook benchchaos uses), a successor on the same data dir re-enqueues the
// interrupted campaign from the fsynced ledger, resumes it from its
// checkpoint journal instead of re-running completed invocations, and the
// merged sample set is bit-identical to an uninterrupted run. CI folds
// this into the chaos-soak job.
func TestCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	spec := CampaignSpec{
		Benchmarks:  []string{"fib"},
		Invocations: 5,
		Iterations:  4,
		Seed:        42,
		Noise:       "quiet",
	}

	// The reference: the same campaign, uninterrupted.
	want, err := Execute(spec, ExecOptions{})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	// Incarnation 1: crash after 2 completed invocation slots. The default
	// CrashFunc wedges the server exactly as SIGKILL would leave the disk —
	// nothing finalized, outcome never journaled.
	s1, err := New(Options{DataDir: dir, Slots: 1, CrashAfterSlots: 2})
	if err != nil {
		t.Fatal(err)
	}
	ts1 := httptest.NewServer(s1.Handler())
	st := submit(t, ts1, spec)
	s1.Start()
	deadline := time.Now().Add(30 * time.Second)
	for !s1.Crashed() {
		if time.Now().After(deadline) {
			t.Fatal("crash point never tripped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	ts1.Close()
	ctx, cancel := contextWithTimeout(t)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil { // executors already stopped by the crash
		t.Fatal(err)
	}

	// Incarnation 2: replay the ledger. The campaign must come back
	// queued, run to completion, and resume rather than restart.
	hook, ch := stateWatcher()
	s2, err := New(Options{DataDir: dir, Slots: 1, OnStateChange: hook})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	s2.Start()
	waitFor(t, ch, st.ID, StateDone)

	resp, err := http.Get(ts2.URL + "/api/v1/campaigns/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.State != StateDone || len(got.Results) != 1 {
		t.Fatalf("recovered campaign: state=%s results=%d error=%q", got.State, len(got.Results), got.Error)
	}
	sv := got.Results[0].Supervision
	if sv == nil || sv.ResumedFrom == 0 {
		t.Fatalf("recovered run did not resume from the checkpoint: %+v", sv)
	}

	// The scientific contract: resumption must not change the data.
	if !reflect.DeepEqual(got.Results[0].Invocations, want[0].Invocations) {
		t.Errorf("resumed sample set differs from uninterrupted run\ngot:  %+v\nwant: %+v",
			got.Results[0].Invocations, want[0].Invocations)
	}

	ctx2, cancel2 := contextWithTimeout(t)
	defer cancel2()
	if err := s2.Shutdown(ctx2); err != nil {
		t.Fatal(err)
	}
}
