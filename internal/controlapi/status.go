package controlapi

import (
	"encoding/json"
	"net/http"

	"repro/internal/exitcode"
)

// The HTTP surface adopts the repository's exit-code taxonomy
// (internal/exitcode) instead of inventing a second failure vocabulary:
// every error response carries the taxonomy name and exit code a CLI
// should propagate, and ExitCode maps any HTTP status back onto the
// taxonomy deterministically. CI scripts therefore branch on the same five
// codes whether a step ran `pybench` locally or talked to a daemon.
//
//	2xx                         → 0 ok
//	400 404 405 409             → 2 usage      (the request is wrong; retrying verbatim cannot help)
//	429 500 502 503             → 3 infra      (the service is full, draining, or broken; retrying may help)
//
// Campaign *outcomes* are not HTTP statuses: a campaign that finished
// below quorum reports state "degraded" with exit 4 inside a 200 response,
// exactly as the CLI exits 4 after printing its partial table.

// ExitCode maps an HTTP response status onto the exit-code taxonomy.
func ExitCode(status int) int {
	switch {
	case status < 400:
		return exitcode.OK
	case status == http.StatusBadRequest, status == http.StatusNotFound,
		status == http.StatusMethodNotAllowed, status == http.StatusConflict:
		return exitcode.Usage
	default:
		return exitcode.Infra
	}
}

// APIError is the JSON error envelope of every non-2xx response.
type APIError struct {
	// Status is the HTTP status code (echoed so a streamed or logged body
	// is self-describing).
	Status int `json:"status"`
	// Taxonomy is exitcode.String of ExitCode(Status).
	Taxonomy string `json:"taxonomy"`
	// Exit is the exit code a CLI should propagate.
	Exit int `json:"exit_code"`
	// Message is the human-readable failure description.
	Message string `json:"message"`
}

func (e *APIError) Error() string { return e.Message }

// writeError emits the uniform error envelope.
func writeError(w http.ResponseWriter, status int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	//benchlint:allow uncheckederr — error-path write; the response is already committed
	json.NewEncoder(w).Encode(errorBody{Error: APIError{
		Status:   status,
		Taxonomy: exitcode.String(ExitCode(status)),
		Exit:     ExitCode(status),
		Message:  msg,
	}})
}

// errorBody wraps APIError under an "error" key so success and failure
// payloads are structurally disjoint.
type errorBody struct {
	Error APIError `json:"error"`
}
