package controlapi

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/exitcode"
)

// newTestServer builds a Server on a scratch data dir (executors stopped
// unless the test calls Start) and its httptest front end.
func newTestServer(t *testing.T, mutate func(*Options)) (*Server, *httptest.Server) {
	t.Helper()
	opts := Options{DataDir: t.TempDir(), Logf: t.Logf}
	if mutate != nil {
		mutate(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

// tinySpec is the cheapest valid campaign: one benchmark, 2×3 design.
func tinySpec() CampaignSpec {
	return CampaignSpec{
		Benchmarks:  []string{"fib"},
		Invocations: 2,
		Iterations:  3,
		Seed:        42,
		Noise:       "quiet",
	}
}

func postJSON(t *testing.T, url string, body []byte) *http.Response {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func mustMarshal(t *testing.T, v any) []byte {
	t.Helper()
	data, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// decodeAPIError decodes the uniform error envelope and closes the body.
func decodeEnvelope(t *testing.T, resp *http.Response) APIError {
	t.Helper()
	defer resp.Body.Close()
	var env errorBody
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		t.Fatalf("error response is not the envelope: %v", err)
	}
	return env.Error
}

// submit posts a spec and returns the accepted status, failing on non-202.
func submit(t *testing.T, ts *httptest.Server, spec CampaignSpec) CampaignStatus {
	t.Helper()
	resp := postJSON(t, ts.URL+"/api/v1/campaigns", mustMarshal(t, spec))
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit: HTTP %d: %s", resp.StatusCode, body)
	}
	var st CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return st
}

// stateWatcher returns an Options hook and a channel of (id, state)
// transitions for tests that must synchronize with the executor.
type transition struct {
	id    string
	state State
}

func stateWatcher() (func(string, State), chan transition) {
	ch := make(chan transition, 64)
	return func(id string, st State) { ch <- transition{id, st} }, ch
}

func waitFor(t *testing.T, ch chan transition, id string, want State) {
	t.Helper()
	deadline := time.After(30 * time.Second)
	for {
		select {
		case tr := <-ch:
			if tr.id == id && tr.state == want {
				return
			}
			if tr.id == id && tr.state.Terminal() {
				t.Fatalf("campaign %s reached terminal state %s, want %s", id, tr.state, want)
			}
		case <-deadline:
			t.Fatalf("campaign %s never reached state %s", id, want)
		}
	}
}

// TestSubmitRejections drives every rejection path of the submit handler
// and asserts both the HTTP status and the taxonomy exit code carried in
// the uniform error envelope.
func TestSubmitRejections(t *testing.T) {
	cases := []struct {
		name       string
		body       func(t *testing.T) []byte
		mutate     func(*Options)
		prepare    func(t *testing.T, s *Server, ts *httptest.Server)
		wantStatus int
		wantIn     string
	}{
		{
			name:       "bad JSON",
			body:       func(t *testing.T) []byte { return []byte("{not json") },
			wantStatus: http.StatusBadRequest,
			wantIn:     "decoding campaign spec",
		},
		{
			name:       "unknown field",
			body:       func(t *testing.T) []byte { return []byte(`{"benchmarks":["fib"],"bogus":1}`) },
			wantStatus: http.StatusBadRequest,
			wantIn:     "bogus",
		},
		{
			name: "no benchmarks",
			body: func(t *testing.T) []byte {
				return mustMarshal(t, CampaignSpec{})
			},
			wantStatus: http.StatusBadRequest,
			wantIn:     "no benchmarks",
		},
		{
			name: "unknown benchmark",
			body: func(t *testing.T) []byte {
				s := tinySpec()
				s.Benchmarks = []string{"no-such-benchmark"}
				return mustMarshal(t, s)
			},
			wantStatus: http.StatusBadRequest,
			wantIn:     "unknown benchmark",
		},
		{
			name: "unknown mode",
			body: func(t *testing.T) []byte {
				s := tinySpec()
				s.Mode = "turbo"
				return mustMarshal(t, s)
			},
			wantStatus: http.StatusBadRequest,
			wantIn:     "unknown mode",
		},
		{
			name: "bad fault spec",
			body: func(t *testing.T) []byte {
				s := tinySpec()
				s.Faults = "gamma-rays=2.0"
				return mustMarshal(t, s)
			},
			wantStatus: http.StatusBadRequest,
		},
		{
			name: "tenant quota exceeded",
			body: func(t *testing.T) []byte { return mustMarshal(t, tinySpec()) },
			mutate: func(o *Options) { o.TenantQuota = 1 },
			prepare: func(t *testing.T, s *Server, ts *httptest.Server) {
				// Executors are not started, so this one stays in flight.
				submit(t, ts, tinySpec())
			},
			wantStatus: http.StatusTooManyRequests,
			wantIn:     "quota",
		},
		{
			name: "queue full",
			body: func(t *testing.T) []byte {
				s := tinySpec()
				s.Tenant = "other" // dodge the tenant quota; hit the queue bound
				return mustMarshal(t, s)
			},
			mutate: func(o *Options) { o.QueueDepth = 1 },
			prepare: func(t *testing.T, s *Server, ts *httptest.Server) {
				submit(t, ts, tinySpec())
			},
			wantStatus: http.StatusTooManyRequests,
			wantIn:     "queue full",
		},
		{
			name:    "daemon draining",
			body:    func(t *testing.T) []byte { return mustMarshal(t, tinySpec()) },
			prepare: func(t *testing.T, s *Server, ts *httptest.Server) { s.Drain() },
			wantStatus: http.StatusServiceUnavailable,
			wantIn:     "draining",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, ts := newTestServer(t, tc.mutate)
			if tc.prepare != nil {
				tc.prepare(t, s, ts)
			}
			resp := postJSON(t, ts.URL+"/api/v1/campaigns", tc.body(t))
			if resp.StatusCode != tc.wantStatus {
				body, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				t.Fatalf("HTTP %d, want %d: %s", resp.StatusCode, tc.wantStatus, body)
			}
			env := decodeEnvelope(t, resp)
			// The envelope must carry the taxonomy mapping of its own status.
			if env.Exit != ExitCode(tc.wantStatus) {
				t.Errorf("exit_code = %d, want %d", env.Exit, ExitCode(tc.wantStatus))
			}
			if env.Taxonomy != exitcode.String(ExitCode(tc.wantStatus)) {
				t.Errorf("taxonomy = %q", env.Taxonomy)
			}
			if env.Status != tc.wantStatus {
				t.Errorf("echoed status = %d, want %d", env.Status, tc.wantStatus)
			}
			if tc.wantIn != "" && !strings.Contains(env.Message, tc.wantIn) {
				t.Errorf("message %q missing %q", env.Message, tc.wantIn)
			}
		})
	}
}

// TestStatusExitCodeMapping pins the HTTP-status → taxonomy table.
func TestStatusExitCodeMapping(t *testing.T) {
	cases := map[int]int{
		200: exitcode.OK,
		202: exitcode.OK,
		400: exitcode.Usage,
		404: exitcode.Usage,
		405: exitcode.Usage,
		409: exitcode.Usage,
		429: exitcode.Infra,
		500: exitcode.Infra,
		503: exitcode.Infra,
	}
	for status, want := range cases {
		if got := ExitCode(status); got != want {
			t.Errorf("ExitCode(%d) = %d, want %d", status, got, want)
		}
	}
}

func TestUnknownRoutesAndIDs(t *testing.T) {
	_, ts := newTestServer(t, nil)
	for _, tc := range []struct {
		method, path string
	}{
		{http.MethodGet, "/api/v1/campaigns/c999999"},
		{http.MethodDelete, "/api/v1/campaigns/c999999"},
		{http.MethodGet, "/api/v1/campaigns/c999999/events"},
		{http.MethodGet, "/api/v1/campaigns/c999999/trace"},
		{http.MethodGet, "/api/v2/nope"},
	} {
		req, err := http.NewRequest(tc.method, ts.URL+tc.path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s %s: HTTP %d, want 404", tc.method, tc.path, resp.StatusCode)
		}
		env := decodeEnvelope(t, resp)
		if env.Exit != exitcode.Usage {
			t.Errorf("%s %s: exit %d, want usage", tc.method, tc.path, env.Exit)
		}
	}
}

func TestHealthAndList(t *testing.T) {
	_, ts := newTestServer(t, nil)
	st := submit(t, ts, tinySpec())
	if st.State != StateQueued || st.ID == "" {
		t.Fatalf("accepted status = %+v", st)
	}
	if st.Spec.Invocations != 2 || st.Spec.Tenant != "anonymous" {
		t.Fatalf("spec not normalized on the wire: %+v", st.Spec)
	}
	resp, err := http.Get(ts.URL + "/api/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if h.State != "serving" || h.Queued != 1 || h.Campaigns != 1 {
		t.Fatalf("health = %+v", h)
	}
	resp, err = http.Get(ts.URL + "/api/v1/campaigns")
	if err != nil {
		t.Fatal(err)
	}
	var list []CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}
}

// TestCancelQueuedAndTerminal covers the cancel state machine without
// executors: a queued campaign cancels immediately and a second cancel of
// the now-terminal campaign is a 409 usage error.
func TestCancelQueuedAndTerminal(t *testing.T) {
	_, ts := newTestServer(t, nil)
	st := submit(t, ts, tinySpec())

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/campaigns/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel: HTTP %d", resp.StatusCode)
	}
	var got CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.State != StateCancelled || got.Exit != exitcode.Infra {
		t.Fatalf("cancelled status = %+v", got)
	}

	resp, err = http.DefaultClient.Do(req.Clone(req.Context()))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("second cancel: HTTP %d, want 409", resp.StatusCode)
	}
	env := decodeEnvelope(t, resp)
	if env.Exit != exitcode.Usage {
		t.Errorf("terminal-cancel exit = %d, want usage", env.Exit)
	}
}

// TestMidRunCancel cancels a campaign while the engine is executing it:
// the AbortCheck poll must stop the run and the outcome must journal as
// cancelled, exit 3.
func TestMidRunCancel(t *testing.T) {
	hook, ch := stateWatcher()
	s, ts := newTestServer(t, func(o *Options) {
		o.Slots = 1
		o.OnStateChange = hook
	})
	spec := tinySpec()
	// Big enough that cancellation always lands mid-run.
	spec.Benchmarks = []string{"fib", "nbody", "spectralnorm"}
	spec.Invocations = 6
	spec.Iterations = 60
	st := submit(t, ts, spec)
	s.Start()
	waitFor(t, ch, st.ID, StateRunning)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/campaigns/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("mid-run cancel: HTTP %d", resp.StatusCode)
	}
	waitFor(t, ch, st.ID, StateCancelled)

	final, err := http.Get(ts.URL + "/api/v1/campaigns/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got CampaignStatus
	if err := json.NewDecoder(final.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	final.Body.Close()
	if got.State != StateCancelled || got.Exit != exitcode.Infra {
		t.Fatalf("final status = %+v", got)
	}
	if !strings.Contains(got.Error, "cancelled") {
		t.Errorf("error = %q", got.Error)
	}
}

// TestRunToCompletionEventsAndTrace runs a campaign end to end and checks
// the full read side: final status with results, the SSE stream replayed
// from 0 (benchmark progress framed by state transitions, terminal state
// last), and the downloadable trace.
func TestRunToCompletionEventsAndTrace(t *testing.T) {
	hook, ch := stateWatcher()
	s, ts := newTestServer(t, func(o *Options) { o.OnStateChange = hook })
	spec := tinySpec()
	spec.Benchmarks = []string{"fib", "collatz"}
	st := submit(t, ts, spec)
	s.Start()
	waitFor(t, ch, st.ID, StateDone)

	resp, err := http.Get(ts.URL + "/api/v1/campaigns/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var got CampaignStatus
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got.State != StateDone || got.Exit != exitcode.OK || len(got.Results) != 2 {
		t.Fatalf("final status: state=%s exit=%d results=%d", got.State, got.Exit, len(got.Results))
	}
	if got.Results[0].Invocations[0].Checksum != "1597" {
		t.Errorf("fib checksum = %q", got.Results[0].Invocations[0].Checksum)
	}

	// The stream is closed, so the GET returns every event and ends.
	resp, err = http.Get(ts.URL + "/api/v1/campaigns/" + st.ID + "/events?from=0")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type = %q", ct)
	}
	var states []State
	var benches, traces int
	sc := bufio.NewScanner(resp.Body)
	var typ string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			typ = line[7:]
		case strings.HasPrefix(line, "data: "):
			switch typ {
			case EventState:
				var sc StateChange
				if err := json.Unmarshal([]byte(line[6:]), &sc); err != nil {
					t.Fatal(err)
				}
				states = append(states, sc.State)
			case EventBenchmark:
				benches++
			case EventTrace:
				traces++
			}
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	wantStates := []State{StateQueued, StateRunning, StateDone}
	if fmt.Sprint(states) != fmt.Sprint(wantStates) {
		t.Errorf("state sequence = %v, want %v", states, wantStates)
	}
	if benches != 4 { // 2 benchmarks × (start + done)
		t.Errorf("benchmark events = %d, want 4", benches)
	}
	if traces == 0 {
		t.Error("no trace events on the stream")
	}

	resp, err = http.Get(ts.URL + "/api/v1/campaigns/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	trace, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !bytes.Contains(trace, []byte("traceEvents")) {
		t.Fatalf("trace: HTTP %d, %d bytes", resp.StatusCode, len(trace))
	}
}

// TestBudgetClamping pins the quota tie-in to the PR 1 budget machinery:
// a submission may tighten its budgets but never exceed the ceilings, and
// an unlimited request gets the ceiling outright.
func TestBudgetClamping(t *testing.T) {
	_, ts := newTestServer(t, func(o *Options) {
		o.MaxStepBudget = 5_000_000
		o.MaxWallBudget = 10 * time.Second
	})
	unlimited := submit(t, ts, tinySpec())
	if unlimited.Spec.MaxSteps != 5_000_000 || unlimited.Spec.WallBudgetMs != 10_000 {
		t.Fatalf("unlimited submission not clamped: %+v", unlimited.Spec)
	}
	greedy := tinySpec()
	greedy.MaxSteps = 1 << 60
	greedy.WallBudgetMs = 1 << 40
	clamped := submit(t, ts, greedy)
	if clamped.Spec.MaxSteps != 5_000_000 || clamped.Spec.WallBudgetMs != 10_000 {
		t.Fatalf("greedy submission not clamped: %+v", clamped.Spec)
	}
	tight := tinySpec()
	tight.MaxSteps = 1000
	tight.WallBudgetMs = 50
	kept := submit(t, ts, tight)
	if kept.Spec.MaxSteps != 1000 || kept.Spec.WallBudgetMs != 50 {
		t.Fatalf("tight submission altered: %+v", kept.Spec)
	}
}

// TestDrainKeepsQueuedJobsJournaled shuts a server down with work still
// queued and verifies a successor on the same data dir re-enqueues it.
func TestDrainKeepsQueuedJobsJournaled(t *testing.T) {
	dir := t.TempDir()
	s1, err := New(Options{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s1.Handler())
	st := submit(t, ts, tinySpec())
	ts.Close()
	ctx, cancel := contextWithTimeout(t)
	defer cancel()
	if err := s1.Shutdown(ctx); err != nil { // executors never started: queued job stays
		t.Fatal(err)
	}

	hook, ch := stateWatcher()
	s2, err := New(Options{DataDir: dir, OnStateChange: hook, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	s2.Start()
	waitFor(t, ch, st.ID, StateDone)
	ctx2, cancel2 := contextWithTimeout(t)
	defer cancel2()
	if err := s2.Shutdown(ctx2); err != nil {
		t.Fatal(err)
	}
}
