package controlapi

import (
	"context"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

func contextWithTimeout(t *testing.T) (context.Context, context.CancelFunc) {
	t.Helper()
	return context.WithTimeout(context.Background(), 60*time.Second)
}

// TestCampaignResultGolden pins the campaign-result response byte for
// byte. The response of a pinned-seed campaign is a pure function of the
// spec — no timestamps, no hostnames, no map ordering — so this fixture
// only changes when the wire format or the science deliberately does.
// Regenerate with: go test ./internal/controlapi -run Golden -update
func TestCampaignResultGolden(t *testing.T) {
	hook, ch := stateWatcher()
	s, ts := newTestServer(t, func(o *Options) { o.OnStateChange = hook })
	spec := CampaignSpec{
		Benchmarks:  []string{"fib"},
		Invocations: 2,
		Iterations:  3,
		Seed:        42,
		Noise:       "quiet",
		Tenant:      "golden",
	}
	st := submit(t, ts, spec)
	s.Start()
	waitFor(t, ch, st.ID, StateDone)

	got := getBody(t, ts, "/api/v1/campaigns/"+st.ID)
	golden := filepath.Join("testdata", "campaign_result.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden (re-run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Errorf("campaign result drifted from golden %s\n--- got\n%s--- want\n%s", golden, got, want)
	}

	// The same document must survive a daemon restart byte-identically:
	// a successor process serves the persisted result, not a re-marshal.
	ctx, cancel := contextWithTimeout(t)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	s2, err := New(Options{DataDir: s.opts.DataDir})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(s2.Handler())
	defer ts2.Close()
	again := getBody(t, ts2, "/api/v1/campaigns/"+st.ID)
	if string(again) != string(want) {
		t.Errorf("restarted daemon serves a different result document\n--- got\n%s", again)
	}
}

func getBody(t *testing.T, ts *httptest.Server, path string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: HTTP %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return body
}
