package controlapi

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/exitcode"
	"repro/internal/wal"
)

// State is a campaign's lifecycle state.
type State string

// Campaign lifecycle. queued → running → one of the four terminal states.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateDegraded  State = "degraded"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state ends a campaign.
func (s State) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateDegraded, StateCancelled:
		return true
	}
	return false
}

// ExitCode maps a terminal state onto the exit-code taxonomy: done → 0,
// degraded → 4 (below quorum), cancelled and failed → 3 (incomplete;
// rerunning may succeed). Non-terminal states are 0 — there is no outcome
// yet.
func (s State) ExitCode() int {
	switch s {
	case StateDegraded:
		return exitcode.Degraded
	case StateFailed, StateCancelled:
		return exitcode.Infra
	}
	return exitcode.OK
}

// ledgerRecord is one append to the job ledger. Kind "submit" records an
// accepted campaign (with its normalized spec, so replay re-validates
// nothing); kind "outcome" records a terminal state. A submit without a
// matching outcome is, by definition, work a crashed daemon owes its
// clients — restart re-enqueues it.
type ledgerRecord struct {
	Kind   string        `json:"kind"`
	ID     string        `json:"id"`
	Tenant string        `json:"tenant,omitempty"`
	Spec   *CampaignSpec `json:"spec,omitempty"`
	State  State         `json:"state,omitempty"`
	Error  string        `json:"error,omitempty"`
}

// ledger is the daemon's durable job memory: an append-only CRC-framed
// line journal (crash recovery inherited from internal/wal — torn tails
// truncated, corrupt records discarded and reported) plus a results
// directory of atomically-written campaign result documents. Every append
// is fsynced before the HTTP layer acknowledges, so an accepted campaign
// survives kill -9 by construction.
type ledger struct {
	dir     string
	journal *wal.LineJournal
	// Recovery is the journal's recovery report from open.
	Recovery wal.RecoveryReport
}

// replayedCampaign is one campaign reconstructed from the journal.
type replayedCampaign struct {
	ID     string
	Tenant string
	Spec   CampaignSpec
	State  State
	Error  string
}

// openLedger opens (creating if needed) the ledger under dir and replays
// it: every campaign ever submitted, in submission order, with its last
// known state. Interrupted campaigns come back as StateQueued — their
// checkpoint journals make the re-run cheap.
func openLedger(dir string) (*ledger, []replayedCampaign, error) {
	for _, sub := range []string{"", "results", "campaigns"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return nil, nil, fmt.Errorf("controlapi: creating data dir: %w", err)
		}
	}
	j, payloads, rep, err := wal.OpenLines(wal.OSFS{}, filepath.Join(dir, "ledger.wal"))
	if err != nil {
		return nil, nil, fmt.Errorf("controlapi: opening ledger: %w", err)
	}
	l := &ledger{dir: dir, journal: j, Recovery: rep}
	byID := map[string]*replayedCampaign{}
	var order []string
	for _, raw := range payloads {
		var rec ledgerRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			// The frame CRC was valid, so this is a programming error, not
			// disk damage; refuse to guess.
			//benchlint:allow uncheckederr — cleanup on the error path
			j.Close()
			return nil, nil, fmt.Errorf("controlapi: ledger record undecodable: %w", err)
		}
		switch rec.Kind {
		case "submit":
			if rec.Spec == nil {
				continue
			}
			byID[rec.ID] = &replayedCampaign{
				ID: rec.ID, Tenant: rec.Tenant, Spec: *rec.Spec, State: StateQueued,
			}
			order = append(order, rec.ID)
		case "outcome":
			if c, ok := byID[rec.ID]; ok {
				c.State, c.Error = rec.State, rec.Error
			}
		}
	}
	out := make([]replayedCampaign, 0, len(order))
	for _, id := range order {
		out = append(out, *byID[id])
	}
	return l, out, nil
}

// appendSubmit durably records an accepted campaign.
func (l *ledger) appendSubmit(id, tenant string, spec CampaignSpec) error {
	return l.append(ledgerRecord{Kind: "submit", ID: id, Tenant: tenant, Spec: &spec})
}

// appendOutcome durably records a terminal state.
func (l *ledger) appendOutcome(id string, state State, errMsg string) error {
	return l.append(ledgerRecord{Kind: "outcome", ID: id, State: state, Error: errMsg})
}

func (l *ledger) append(rec ledgerRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("controlapi: encoding ledger record: %w", err)
	}
	return l.journal.Append(data)
}

func (l *ledger) close() error { return l.journal.Close() }

// resultPath locates a campaign's persisted result document.
func (l *ledger) resultPath(id string) string {
	return filepath.Join(l.dir, "results", id+".json")
}

// checkpointDir locates a campaign's per-arm journal checkpoints; it
// exists while the campaign runs and is removed after a clean finish, so
// its presence after restart marks resumable work.
func (l *ledger) checkpointDir(id string) string {
	return filepath.Join(l.dir, "campaigns", id)
}

// saveResult atomically persists a campaign's result document
// (temp + fsync + rename, the same discipline as harness.FileCheckpoint):
// a crash mid-write can never leave a half-written result behind.
func (l *ledger) saveResult(id string, data []byte) error {
	path := l.resultPath(id)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("controlapi: writing result: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		//benchlint:allow uncheckederr — cleanup; the write error wins
		f.Close()
		return fmt.Errorf("controlapi: writing result: %w", err)
	}
	if err := f.Sync(); err != nil {
		//benchlint:allow uncheckederr — cleanup; the sync error wins
		f.Close()
		return fmt.Errorf("controlapi: syncing result: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("controlapi: closing result: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("controlapi: publishing result: %w", err)
	}
	return nil
}

// loadResult reads a persisted result document (nil when none exists).
func (l *ledger) loadResult(id string) ([]byte, error) {
	data, err := os.ReadFile(l.resultPath(id))
	if os.IsNotExist(err) {
		return nil, nil
	}
	return data, err
}
