package controlapi

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
)

// TenantHeader attributes a submission to a tenant for quota accounting
// when the spec itself does not name one.
const TenantHeader = "X-Benchd-Tenant"

// maxSpecBytes bounds a submission body; a campaign spec is a page of
// JSON, not a payload channel.
const maxSpecBytes = 1 << 20

// Handler returns the daemon's HTTP API. Routes (see docs/api.md):
//
//	GET    /api/v1/healthz               liveness + drain state
//	POST   /api/v1/campaigns             submit a campaign
//	GET    /api/v1/campaigns             list campaigns
//	GET    /api/v1/campaigns/{id}        status + terminal results
//	DELETE /api/v1/campaigns/{id}        cancel (queued or running)
//	GET    /api/v1/campaigns/{id}/events SSE progress stream
//	GET    /api/v1/campaigns/{id}/trace  Chrome trace of a finished campaign
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /api/v1/healthz", s.handleHealth)
	mux.HandleFunc("POST /api/v1/campaigns", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/campaigns", s.handleList)
	mux.HandleFunc("GET /api/v1/campaigns/{id}", s.handleGet)
	mux.HandleFunc("DELETE /api/v1/campaigns/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /api/v1/campaigns/{id}/trace", s.handleTrace)
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "unknown route "+r.URL.Path)
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	//benchlint:allow uncheckederr — the response is already committed
	enc.Encode(v)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := Health{
		State:     "serving",
		Queued:    len(s.queue),
		Running:   s.running,
		Campaigns: len(s.campaigns),
	}
	if s.draining || s.crashed {
		h.State = "draining"
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, h)
}

// handleSubmit accepts a campaign: decode strictly, validate against the
// inventory, enforce the tenant quota and queue bound, clamp budgets to
// the service ceilings, journal the submission durably, then enqueue.
// Only after the fsynced ledger append does the client see 202.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "daemon is draining; resubmit elsewhere or after restart")
		return
	}
	var spec CampaignSpec
	dec := json.NewDecoder(io.LimitReader(r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "decoding campaign spec: "+err.Error())
		return
	}
	if spec.Tenant == "" {
		spec.Tenant = r.Header.Get(TenantHeader)
	}
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Budget clamps: the PR 1 per-invocation budgets, bounded by service
	// policy. Zero (unlimited) requests get the ceiling outright.
	if spec.MaxSteps == 0 || spec.MaxSteps > s.opts.MaxStepBudget {
		spec.MaxSteps = s.opts.MaxStepBudget
	}
	if wall := int64(s.opts.MaxWallBudget.Milliseconds()); spec.WallBudgetMs == 0 || spec.WallBudgetMs > wall {
		spec.WallBudgetMs = wall
	}

	s.mu.Lock()
	if s.draining || s.crashed {
		s.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "daemon is draining")
		return
	}
	if len(s.queue) >= s.opts.QueueDepth {
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("queue full (%d campaigns pending); retry later", s.opts.QueueDepth))
		return
	}
	inflight := 0
	for _, c := range s.campaigns {
		if c.tenant == spec.Tenant && !c.state.Terminal() {
			inflight++
		}
	}
	if inflight >= s.opts.TenantQuota {
		s.mu.Unlock()
		writeError(w, http.StatusTooManyRequests,
			fmt.Sprintf("tenant %q has %d campaigns in flight (quota %d); wait or cancel one",
				spec.Tenant, inflight, s.opts.TenantQuota))
		return
	}
	id := fmt.Sprintf("c%06d", s.nextID)
	s.nextID++
	if err := s.ledger.appendSubmit(id, spec.Tenant, spec); err != nil {
		s.mu.Unlock()
		writeError(w, http.StatusInternalServerError, "journaling submission: "+err.Error())
		return
	}
	c := &campaign{
		id:     id,
		tenant: spec.Tenant,
		spec:   spec,
		state:  StateQueued,
		events: newEventLog(),
		cancel: make(chan struct{}),
	}
	s.campaigns[id] = c
	s.order = append(s.order, id)
	s.queue = append(s.queue, c)
	s.cond.Signal()
	status := s.statusLocked(c, StateQueued, "", nil)
	s.mu.Unlock()

	c.events.append(EventState, StateChange{ID: id, State: StateQueued})
	s.opts.Logf("controlapi: accepted campaign %s (%v) for tenant %s", id, spec.Benchmarks, spec.Tenant)
	writeJSON(w, http.StatusAccepted, status)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	out := make([]CampaignStatus, 0, len(s.order))
	for _, id := range s.order {
		c := s.campaigns[id]
		out = append(out, s.statusLocked(c, c.state, c.errMsg, nil))
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

// lookup resolves a campaign id, writing the 404 itself on a miss.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *campaign {
	id := r.PathValue("id")
	s.mu.Lock()
	c := s.campaigns[id]
	s.mu.Unlock()
	if c == nil {
		writeError(w, http.StatusNotFound, "unknown campaign "+id)
		return nil
	}
	return c
}

// handleGet returns a campaign's status; terminal campaigns carry their
// results — from memory when this process ran them, otherwise from the
// persisted result document (a daemon serves its whole history across
// restarts).
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(w, r)
	if c == nil {
		return
	}
	s.mu.Lock()
	state, errMsg, results := c.state, c.errMsg, c.results
	s.mu.Unlock()
	if state.Terminal() && results == nil {
		if doc, err := s.ledger.loadResult(c.id); err == nil && doc != nil {
			// The persisted document IS the response (byte-stable).
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			//benchlint:allow uncheckederr — the response is already committed
			w.Write(doc)
			return
		}
	}
	writeJSON(w, http.StatusOK, s.statusLocked(c, state, errMsg, results))
}

// handleCancel cancels a campaign. Queued: finalized immediately. Running:
// the engine aborts at its next AbortCheck poll and the executor
// finalizes. Terminal: 409 — the outcome exists and will not be unmade.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(w, r)
	if c == nil {
		return
	}
	s.mu.Lock()
	state := c.state
	if state.Terminal() {
		s.mu.Unlock()
		writeError(w, http.StatusConflict,
			fmt.Sprintf("campaign %s already %s", c.id, state))
		return
	}
	c.cancelOnce.Do(func() { close(c.cancel) })
	finalizeNow := false
	if state == StateQueued {
		for i, qc := range s.queue {
			if qc == c {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				finalizeNow = true
				break
			}
		}
	}
	s.mu.Unlock()
	if finalizeNow {
		if err := s.ledger.appendOutcome(c.id, StateCancelled, "cancelled before start"); err != nil {
			s.opts.Logf("controlapi: %s: journaling cancellation: %v", c.id, err)
		}
		s.setState(c, StateCancelled, "cancelled before start")
	}
	s.mu.Lock()
	status := s.statusLocked(c, c.state, c.errMsg, nil)
	s.mu.Unlock()
	writeJSON(w, http.StatusAccepted, status)
}

// handleEvents streams a campaign's event log as Server-Sent Events,
// replaying from the requested position (?from= or Last-Event-ID) and
// following live until the campaign is terminal or the client leaves.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(w, r)
	if c == nil {
		return
	}
	from := 0
	if v := r.URL.Query().Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "bad from position "+v)
			return
		}
		from = n
	} else if v := r.Header.Get("Last-Event-ID"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n >= 0 {
			from = n + 1
		}
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	//benchlint:allow uncheckederr — http.Flusher.Flush has no error return
	flusher.Flush()

	ctx := r.Context()
	go func() {
		<-ctx.Done()
		c.events.wake()
	}()
	stop := func() bool { return ctx.Err() != nil }
	for {
		ev, ok := c.events.next(from, stop)
		if !ok {
			return
		}
		from = ev.Seq + 1
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Type, ev.Data); err != nil {
			return
		}
		//benchlint:allow uncheckederr — http.Flusher.Flush has no error return
		flusher.Flush()
	}
}

// handleTrace serves the Chrome trace-event timeline of a campaign run by
// this process (traces are in-memory observability, not durable state).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	c := s.lookup(w, r)
	if c == nil {
		return
	}
	s.mu.Lock()
	tracer, terminal := c.tracer, c.state.Terminal()
	s.mu.Unlock()
	if tracer == nil || !terminal {
		writeError(w, http.StatusNotFound,
			"trace unavailable (campaign still running, or finished before a restart)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	if err := tracer.Export(w); err != nil {
		s.opts.Logf("controlapi: %s: exporting trace: %v", c.id, err)
	}
}
