package controlapi

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strconv"
	"sync"
	"time"

	"repro/internal/harness"
	"repro/internal/trace"
)

// Options configures a Server. The zero value of every knob selects a
// sensible default; DataDir is required.
type Options struct {
	// DataDir holds the job ledger, per-campaign checkpoint journals, and
	// persisted result documents. A daemon restarted on the same DataDir
	// recovers its ledger and resumes interrupted campaigns.
	DataDir string
	// QueueDepth bounds accepted-but-unstarted campaigns (default 32);
	// beyond it submissions are rejected with 429, never silently dropped.
	QueueDepth int
	// Slots is the number of campaigns executed concurrently (default 2).
	// Each campaign's sample set is a pure function of its spec, so
	// concurrency never enters the science.
	Slots int
	// TenantQuota bounds one tenant's in-flight (queued + running)
	// campaigns (default 4) — the per-tenant concurrency quota.
	TenantQuota int
	// MaxStepBudget and MaxWallBudget clamp every submission's
	// per-invocation budgets (the PR 1 budget machinery): a spec may
	// tighten its own budget but never exceed the service ceiling.
	// Defaults: 1<<32 steps, 2 minutes wall.
	MaxStepBudget uint64
	MaxWallBudget time.Duration
	// CrashAfterSlots, when > 0, arms the chaos crash hook: the first
	// campaign executed runs with harness.SupervisorOptions.CrashAfter set,
	// and when the crash point trips CrashFunc is invoked with the ledger
	// exactly as a kill -9 would leave it. Never production.
	CrashAfterSlots int
	// CrashFunc realizes the crash (default: wedge the server — executors
	// stop, nothing is finalized). cmd/pybenchd installs a real SIGKILL.
	CrashFunc func()
	// OnStateChange, when non-nil, observes every campaign state
	// transition (logging and tests).
	OnStateChange func(id string, state State)
	// Logf sinks operational log lines (default: discard).
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.QueueDepth <= 0 {
		o.QueueDepth = 32
	}
	if o.Slots <= 0 {
		o.Slots = 2
	}
	if o.TenantQuota <= 0 {
		o.TenantQuota = 4
	}
	if o.MaxStepBudget == 0 {
		o.MaxStepBudget = 1 << 32
	}
	if o.MaxWallBudget == 0 {
		o.MaxWallBudget = 2 * time.Minute
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o
}

// campaign is the server-side state of one submission.
type campaign struct {
	id     string
	tenant string
	spec   CampaignSpec
	state  State
	errMsg string
	// results holds the in-memory results of a campaign finished in this
	// process; campaigns finished before a restart are served from the
	// persisted result document instead.
	results []*harness.Result
	events  *eventLog
	// cancel is closed by the cancel handler; the engine's AbortCheck and
	// the executor poll it.
	cancel     chan struct{}
	cancelOnce sync.Once
	tracer     *trace.Tracer
	// resumable marks a campaign replayed from the ledger as interrupted
	// (its checkpoint journals make the re-run skip completed slots).
	resumable bool
}

func (c *campaign) cancelled() bool {
	select {
	case <-c.cancel:
		return true
	default:
		return false
	}
}

// CampaignStatus is the JSON shape of a campaign on the wire — the
// response of submit/get/cancel and the payload persisted as the result
// document. It contains no wall-clock fields: like every artifact in this
// repository, the response of a pinned-seed campaign is byte-stable.
type CampaignStatus struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	State  State  `json:"state"`
	// Exit is the taxonomy exit code of the outcome (0 until terminal).
	Exit  int          `json:"exit_code"`
	Error string       `json:"error,omitempty"`
	Spec  CampaignSpec `json:"spec"`
	// Results carries one harness result per benchmark, in spec order,
	// once the campaign is terminal (partial on degraded/failed runs).
	Results []*harness.Result `json:"results,omitempty"`
}

// Health is the JSON shape of GET /api/v1/healthz.
type Health struct {
	// State is "serving" or "draining".
	State string `json:"state"`
	// Queued and Running count in-flight campaigns.
	Queued  int `json:"queued"`
	Running int `json:"running"`
	// Campaigns counts every campaign the ledger knows.
	Campaigns int `json:"campaigns"`
}

// Server is the pybenchd control plane: a bounded campaign queue feeding
// Slots executor goroutines, per-tenant quotas, an SSE event stream per
// campaign, and a WAL-journaled ledger that survives kill -9.
type Server struct {
	opts   Options
	ledger *ledger

	mu        sync.Mutex
	cond      *sync.Cond
	campaigns map[string]*campaign
	order     []string
	queue     []*campaign
	running   int
	nextID    int
	draining  bool
	crashed   bool
	started   bool

	wg sync.WaitGroup
}

// New opens the ledger under opts.DataDir, replays it, and re-enqueues
// every campaign that never reached a terminal state. Executors do not run
// until Start is called, so tests can drive the queue synchronously.
func New(opts Options) (*Server, error) {
	opts = opts.withDefaults()
	if opts.DataDir == "" {
		return nil, errors.New("controlapi: Options.DataDir is required")
	}
	led, replayed, err := openLedger(opts.DataDir)
	if err != nil {
		return nil, err
	}
	s := &Server{opts: opts, ledger: led, campaigns: map[string]*campaign{}}
	s.cond = sync.NewCond(&s.mu)
	if !led.Recovery.Clean() {
		s.opts.Logf("controlapi: ledger recovered: %s", led.Recovery.String())
	}
	for _, rc := range replayed {
		c := &campaign{
			id:     rc.ID,
			tenant: rc.Tenant,
			spec:   rc.Spec,
			state:  rc.State,
			errMsg: rc.Error,
			events: newEventLog(),
			cancel: make(chan struct{}),
		}
		s.campaigns[c.id] = c
		s.order = append(s.order, c.id)
		if n, err := strconv.Atoi(rc.ID[1:]); err == nil && n >= s.nextID {
			s.nextID = n + 1
		}
		if c.state.Terminal() {
			// Replayed history: the stream holds its terminal transition.
			c.events.append(EventState, StateChange{
				ID: c.id, State: c.state, Exit: c.state.ExitCode(), Error: c.errMsg,
			})
			c.events.close()
			continue
		}
		// Interrupted mid-flight: requeue. The campaign's checkpoint
		// journals (still on disk — cleanup happens only on a clean
		// finish) make the re-run resume rather than repeat.
		c.state = StateQueued
		c.resumable = true
		c.events.append(EventState, StateChange{ID: c.id, State: StateQueued})
		s.queue = append(s.queue, c)
		s.opts.Logf("controlapi: requeued interrupted campaign %s", c.id)
	}
	return s, nil
}

// Start launches the executor pool.
func (s *Server) Start() {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.started {
		return
	}
	s.started = true
	for i := 0; i < s.opts.Slots; i++ {
		s.wg.Add(1)
		go s.executor()
	}
}

// Drain stops accepting submissions and stops dequeuing: running
// campaigns finish, queued ones stay journaled for the next start.
func (s *Server) Drain() {
	s.mu.Lock()
	s.draining = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Draining reports whether the server refuses new submissions.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Crashed reports whether the chaos crash hook fired (in-process
// configurations; the daemon's CrashFunc never returns).
func (s *Server) Crashed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashed
}

// Shutdown drains and waits for running campaigns to finish. If ctx ends
// first, running campaigns are cancelled and waited for unconditionally
// (their slots abort within an AbortCheck poll). The ledger is closed
// last, so every outcome reached disk.
func (s *Server) Shutdown(ctx context.Context) error {
	s.Drain()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		s.mu.Lock()
		for _, c := range s.campaigns {
			if c.state == StateRunning {
				c.cancelOnce.Do(func() { close(c.cancel) })
			}
		}
		s.mu.Unlock()
		<-done
	}
	return s.ledger.close()
}

// dequeue blocks until a campaign is available, returning nil when the
// server drains or crashes.
func (s *Server) dequeue() *campaign {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.draining || s.crashed {
			return nil
		}
		if len(s.queue) > 0 {
			c := s.queue[0]
			s.queue = s.queue[1:]
			s.running++
			return c
		}
		s.cond.Wait()
	}
}

func (s *Server) executor() {
	defer s.wg.Done()
	for {
		c := s.dequeue()
		if c == nil {
			return
		}
		s.runCampaign(c)
		s.mu.Lock()
		s.running--
		s.mu.Unlock()
	}
}

// setState moves a campaign's lifecycle state, emits the state event, and
// notifies the observer hook. Terminal states close the event stream.
func (s *Server) setState(c *campaign, state State, errMsg string) {
	s.mu.Lock()
	c.state = state
	c.errMsg = errMsg
	s.mu.Unlock()
	c.events.append(EventState, StateChange{
		ID: c.id, State: state, Exit: state.ExitCode(), Error: errMsg,
	})
	if state.Terminal() {
		c.events.close()
	}
	if s.opts.OnStateChange != nil {
		s.opts.OnStateChange(c.id, state)
	}
}

// tracedCategories are the Observer span categories forwarded to the SSE
// stream. Iteration and phase spans are per-iteration hot events — they
// stay in the downloadable trace but off the wire.
var tracedCategories = map[string]bool{
	trace.CatBenchmark:  true,
	trace.CatInvocation: true,
	trace.CatSupervisor: true,
}

// pumpTrace forwards new Observer events from the campaign tracer to the
// event log until stop closes, then drains once more so the stream holds
// every span of the finished run.
func (s *Server) pumpTrace(c *campaign, stop <-chan struct{}) {
	seen := 0
	forward := func() {
		if c.tracer.Len() == seen {
			return
		}
		events := c.tracer.Events()
		for _, ev := range events[seen:] {
			if tracedCategories[ev.Cat] {
				c.events.append(EventTrace, ev)
			}
		}
		seen = len(events)
	}
	tick := time.NewTicker(25 * time.Millisecond)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			forward()
			return
		case <-tick.C:
			forward()
		}
	}
}

// runCampaign executes one campaign through the shared Execute path and
// finalizes its outcome: result document persisted atomically, outcome
// journaled, state event emitted. A fired crash point skips ALL of that —
// the ledger must look exactly as kill -9 would leave it.
func (s *Server) runCampaign(c *campaign) {
	s.setState(c, StateRunning, "")
	c.tracer = trace.New()
	runner := harness.NewRunner()
	runner.SetObserver(harness.Observer{Trace: c.tracer})

	pumpDone := make(chan struct{})
	pumpStopped := make(chan struct{})
	go func() {
		s.pumpTrace(c, pumpDone)
		close(pumpStopped)
	}()

	total := len(c.spec.Benchmarks)
	results, err := Execute(c.spec, ExecOptions{
		Runner:        runner,
		CheckpointDir: s.ledger.checkpointDir(c.id),
		CrashAfter:    s.takeCrashBudget(),
		AbortCheck: func() error {
			if c.cancelled() {
				return errors.New("campaign cancelled by client")
			}
			return nil
		},
		OnBenchmark: func(i int, name string, done bool) {
			c.events.append(EventBenchmark, BenchmarkProgress{
				ID: c.id, Benchmark: name, Index: i, Total: total, Done: done,
			})
		},
	})
	close(pumpDone)
	<-pumpStopped

	if err != nil && errors.Is(err, harness.ErrCrashPoint) {
		s.crash(c, err)
		return
	}

	c.results = results
	state, errMsg := StateDone, ""
	switch {
	case c.cancelled():
		state, errMsg = StateCancelled, "campaign cancelled by client"
	case errors.Is(err, harness.ErrQuorum):
		state, errMsg = StateDegraded, err.Error()
	case err != nil:
		state, errMsg = StateFailed, err.Error()
	}

	// Persist before acknowledging: result document first (atomic), then
	// the outcome record. A crash between the two replays the campaign —
	// wasteful, never wrong.
	status := s.statusLocked(c, state, errMsg, results)
	doc, merr := json.MarshalIndent(status, "", "  ")
	if merr == nil {
		merr = s.ledger.saveResult(c.id, append(doc, '\n'))
	}
	if merr != nil {
		s.opts.Logf("controlapi: %s: persisting result: %v", c.id, merr)
		if state == StateDone {
			state, errMsg = StateFailed, fmt.Sprintf("persisting result: %v", merr)
		}
	}
	if jerr := s.ledger.appendOutcome(c.id, state, errMsg); jerr != nil {
		s.opts.Logf("controlapi: %s: journaling outcome: %v", c.id, jerr)
	}
	removeAll(s.ledger.checkpointDir(c.id))
	s.setState(c, state, errMsg)
	s.opts.Logf("controlapi: campaign %s finished: %s %s", c.id, state, errMsg)
}

// takeCrashBudget arms the chaos crash hook exactly once.
func (s *Server) takeCrashBudget() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := s.opts.CrashAfterSlots
	s.opts.CrashAfterSlots = 0
	return n
}

// crash realizes a tripped crash point: nothing is finalized, the server
// wedges (or CrashFunc SIGKILLs the process), and the on-disk state is
// whatever the fsynced journals already hold.
func (s *Server) crash(c *campaign, err error) {
	s.opts.Logf("controlapi: campaign %s hit crash point: %v", c.id, err)
	s.mu.Lock()
	s.crashed = true
	s.cond.Broadcast()
	s.mu.Unlock()
	if s.opts.CrashFunc != nil {
		s.opts.CrashFunc()
	}
}

// statusLocked builds the wire status of a campaign.
func (s *Server) statusLocked(c *campaign, state State, errMsg string, results []*harness.Result) CampaignStatus {
	return CampaignStatus{
		ID:      c.id,
		Tenant:  c.tenant,
		State:   state,
		Exit:    state.ExitCode(),
		Error:   errMsg,
		Spec:    c.spec,
		Results: results,
	}
}

// removeAll is os.RemoveAll with the error deliberately dropped: stale
// checkpoint dirs are garbage, not state.
func removeAll(dir string) {
	//benchlint:allow uncheckederr — best-effort scratch cleanup
	os.RemoveAll(dir)
}
