// Package controlapi is the benchmarking-as-a-service control plane: the
// campaign specification shared by the one-shot CLI and the pybenchd
// daemon, the HTTP/JSON API that accepts campaign submissions, the bounded
// scheduler that runs them on the rigorous harness, the crash-safe job
// ledger, and the SSE event stream that surfaces Observer spans and final
// Kalibera–Jones-ready results to remote clients (DESIGN.md §15).
//
// The package is deliberately split so `pybench -bench` and a campaign
// submitted over HTTP execute the *same* function (Execute) on the same
// internals: the daemon adds queueing, quotas, durability, and streaming
// around it, never a second execution semantics. That is what makes the
// daemon-smoke CI gate meaningful — the two paths must produce
// bit-identical sample sets because they are one path.
package controlapi

import (
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/noise"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// CampaignSpec is the complete description of one benchmark campaign: the
// benchmark selection, the experiment arms and design, and the
// fault/isolation policy. It is the wire format of POST /api/v1/campaigns
// and the in-process input of the CLI's -bench path, so every knob the
// one-shot run honors is a knob a remote submission can set.
//
// The zero value of every field selects the same default the CLI uses;
// Normalize makes those defaults explicit so a stored spec replays
// identically even if defaults drift later.
type CampaignSpec struct {
	// Benchmarks names the workloads to run, in order. Required.
	Benchmarks []string `json:"benchmarks"`
	// Mode is the engine arm: "interp" (default) or "jit".
	Mode string `json:"mode,omitempty"`
	// Invocations × Iterations is the two-level experiment design
	// (defaults 10 × 30).
	Invocations int `json:"invocations,omitempty"`
	Iterations  int `json:"iterations,omitempty"`
	// Seed drives noise, faults, and bootstrap; default 42.
	Seed uint64 `json:"seed,omitempty"`
	// Noise names the simulated machine: default, quiet, noisy, none.
	Noise string `json:"noise,omitempty"`
	// Opt is the bytecode-optimization level (0–3); levels ≥ 1 are a
	// distinct experiment arm (ablations A7/A8).
	Opt int `json:"opt,omitempty"`
	// VM selects the execution tier: "" or "reg" (register tier, default),
	// "stack" (stack interpreter), or "reg-elide" (move-elided register
	// stream, ablation A9). reg and stack produce bit-identical sample
	// sets (DESIGN.md §16), so unlike Opt they are not distinct arms;
	// reg-elide changes the executed stream and is.
	VM string `json:"vm,omitempty"`
	// Workers fans invocations across shards; the sample set is identical
	// to sequential by construction.
	Workers int `json:"workers,omitempty"`
	// ParallelPolicy is the interference-guard policy: guard, fallback,
	// force.
	ParallelPolicy string `json:"parallel_policy,omitempty"`
	// Faults is the injected-fault model spec ("", none, light, heavy,
	// chaos, or kind=prob list).
	Faults string `json:"faults,omitempty"`
	// Retries and Quorum are the supervision policy (see harness.Supervisor).
	Retries int `json:"retries,omitempty"`
	Quorum  int `json:"quorum,omitempty"`
	// Isolate shells invocation attempts out to watchdogged worker
	// subprocesses; WatchdogMs bounds each attempt (0 = 30s default).
	Isolate    bool  `json:"isolate,omitempty"`
	WatchdogMs int64 `json:"watchdog_ms,omitempty"`
	// MaxSteps and WallBudgetMs are the PR 1 per-invocation budgets. The
	// daemon clamps both to its per-tenant ceilings (Options.MaxStepBudget
	// and MaxWallBudget), so a submission can tighten its own budget but
	// never exceed the service's.
	MaxSteps     uint64 `json:"max_steps,omitempty"`
	WallBudgetMs int64  `json:"wall_budget_ms,omitempty"`
	// Tenant attributes the campaign for quota accounting. The HTTP layer
	// defaults it from the X-Benchd-Tenant header, then "anonymous".
	Tenant string `json:"tenant,omitempty"`
}

// SpecError marks an invalid campaign specification. The CLI maps it to
// exit 2 (usage) and the HTTP layer to 400 — same taxonomy, two surfaces.
type SpecError struct{ msg string }

func (e *SpecError) Error() string { return e.msg }

func specErrf(format string, args ...any) *SpecError {
	return &SpecError{msg: fmt.Sprintf(format, args...)}
}

// BenchmarkNames lists every runnable workload (canonical suite plus
// extended set) — the inventory quoted in unknown-benchmark errors and
// the CLI's usage text.
func BenchmarkNames() []string {
	var names []string
	for _, b := range workloads.Suite() {
		names = append(names, b.Name)
	}
	for _, b := range workloads.Extended() {
		names = append(names, b.Name)
	}
	return names
}

// NoiseByName resolves the CLI/API noise-model names. It is the single
// mapping both pybench and the daemon use.
func NoiseByName(name string) (noise.Params, error) {
	switch name {
	case "default", "":
		return noise.Default(), nil
	case "quiet":
		return noise.Quiet(), nil
	case "noisy":
		return noise.Noisy(), nil
	case "none":
		// The zero Params would read as "use the default" downstream, so
		// nudge one field to keep it distinct while staying noiseless.
		return noise.Params{SpikeProb: 0, IterationSigma: 1e-12}, nil
	}
	return noise.Params{}, specErrf("unknown noise model %q", name)
}

// ModeByName resolves the engine-arm name shared by the CLI and the API.
func ModeByName(name string) (vm.Mode, error) {
	switch name {
	case "interp", "":
		return vm.ModeInterp, nil
	case "jit":
		return vm.ModeJIT, nil
	}
	return 0, specErrf("unknown mode %q (want interp or jit)", name)
}

// Normalize returns the spec with every defaulted field made explicit, so
// the stored ledger copy replays bit-identically regardless of future
// default drift and the golden response fixture is byte-stable.
func (s CampaignSpec) Normalize() CampaignSpec {
	if s.Mode == "" {
		s.Mode = "interp"
	}
	if s.Invocations <= 0 {
		s.Invocations = 10
	}
	if s.Iterations <= 0 {
		s.Iterations = 30
	}
	if s.Seed == 0 {
		s.Seed = 42
	}
	if s.Noise == "" {
		s.Noise = "default"
	}
	if s.Workers < 1 {
		s.Workers = 1
	}
	if s.ParallelPolicy == "" {
		s.ParallelPolicy = string(harness.PolicyGuard)
	}
	if s.Tenant == "" {
		s.Tenant = "anonymous"
	}
	return s
}

// Validate checks the spec against the workload inventory and every
// enumerated knob. All failures are SpecErrors (usage taxonomy).
func (s CampaignSpec) Validate() error {
	if len(s.Benchmarks) == 0 {
		return specErrf("campaign names no benchmarks")
	}
	for _, name := range s.Benchmarks {
		if _, ok := workloads.ByName(name); !ok {
			return specErrf("unknown benchmark %q; available: %s (run 'pybench -list' for descriptions)",
				name, strings.Join(BenchmarkNames(), ", "))
		}
	}
	if _, err := ModeByName(s.Mode); err != nil {
		return err
	}
	if _, err := NoiseByName(s.Noise); err != nil {
		return err
	}
	if _, err := harness.ParseParallelPolicy(s.ParallelPolicy); err != nil {
		return specErrf("%v", err)
	}
	if _, err := faults.Parse(s.Faults); err != nil {
		return specErrf("%v", err)
	}
	if s.Opt < 0 || s.Opt > 3 {
		return specErrf("opt level %d out of range 0..3", s.Opt)
	}
	if _, _, ok := vm.TierSpec(s.VM); !ok {
		return specErrf("unknown vm tier %q (want reg, stack, or reg-elide)", s.VM)
	}
	if s.Invocations < 0 || s.Iterations < 0 {
		return specErrf("negative experiment design")
	}
	if s.Retries < 0 {
		return specErrf("negative retry budget")
	}
	if s.Quorum < 0 {
		return specErrf("negative quorum")
	}
	return nil
}

// ExecOptions parameterizes Execute with the pieces that belong to the
// caller, not the spec: the runner (so the CLI can attach its observer and
// the daemon its streaming tracer), durability, cancellation, and the
// chaos crash hook.
type ExecOptions struct {
	// Runner executes the campaign (nil = a fresh private runner).
	Runner *harness.Runner
	// CheckpointDir, when set, gives every benchmark × mode arm a
	// crash-safe journal checkpoint there, so a killed process resumes the
	// campaign without re-running completed invocations.
	CheckpointDir string
	// AbortCheck is polled by the engine during execution and between
	// benchmarks; a non-nil return cancels the campaign.
	AbortCheck func() error
	// CrashAfter, when > 0, arms harness.SupervisorOptions.CrashAfter on
	// every arm: the supervisor aborts as a kill -9 would after that many
	// slot completions. Chaos-testing hook, never production.
	CrashAfter int
	// OnBenchmark, when non-nil, is called before and after each
	// benchmark runs (done=false, then done=true) — the daemon's progress
	// events come from here.
	OnBenchmark func(index int, name string, done bool)
}

// Execute runs a validated campaign and returns one Result per benchmark,
// in spec order. It is the single execution path shared by `pybench
// -bench` and the daemon: supervision is always on (the zero policy is
// byte-identical to a bare run), budgets flow from the spec, and the
// checkpoint layout matches the CLI's -resume so either surface can resume
// the other's interrupted campaign.
func Execute(spec CampaignSpec, eo ExecOptions) ([]*harness.Result, error) {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	mode, _ := ModeByName(spec.Mode)
	np, _ := NoiseByName(spec.Noise)
	policy, _ := harness.ParseParallelPolicy(spec.ParallelPolicy)
	fp, _ := faults.Parse(spec.Faults)
	runner := eo.Runner
	if runner == nil {
		runner = harness.NewRunner()
	}
	if eo.CheckpointDir != "" {
		if err := os.MkdirAll(eo.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("creating checkpoint dir: %w", err)
		}
	}
	po := harness.ParallelOptions{Workers: spec.Workers, Policy: policy}
	var results []*harness.Result
	for i, name := range spec.Benchmarks {
		if eo.AbortCheck != nil {
			if err := eo.AbortCheck(); err != nil {
				return results, err
			}
		}
		b, _ := workloads.ByName(name)
		so := harness.SupervisorOptions{
			MaxRetries: spec.Retries,
			Quorum:     spec.Quorum,
			Faults:     fp,
			Isolation: harness.IsolationOptions{
				Enabled:  spec.Isolate,
				Watchdog: time.Duration(spec.WatchdogMs) * time.Millisecond,
			},
			CrashAfter: eo.CrashAfter,
		}
		if eo.CheckpointDir != "" {
			so.Checkpoint = harness.JournalCheckpointFor(eo.CheckpointDir, b.Name, mode)
		}
		opts := harness.Options{
			Mode:                  mode,
			Invocations:           spec.Invocations,
			Iterations:            spec.Iterations,
			Seed:                  spec.Seed,
			Noise:                 np,
			Opt:                   spec.Opt,
			VM:                    spec.VM,
			MaxStepsPerInvocation: spec.MaxSteps,
			WallBudget:            time.Duration(spec.WallBudgetMs) * time.Millisecond,
			AbortCheck:            eo.AbortCheck,
		}
		if eo.OnBenchmark != nil {
			eo.OnBenchmark(i, name, false)
		}
		res, err := harness.NewSupervisor(runner, so).RunParallel(b, opts, po)
		if err != nil {
			if res != nil {
				results = append(results, res)
			}
			return results, fmt.Errorf("campaign benchmark %s: %w", name, err)
		}
		results = append(results, res)
		if eo.OnBenchmark != nil {
			eo.OnBenchmark(i, name, true)
		}
	}
	return results, nil
}
