package perfstore

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/vm"
	"repro/internal/wal"
)

func runRecord(commit string, value float64) Record {
	return Record{
		Kind:   KindRun,
		Commit: commit,
		Branch: "main",
		Time:   time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC),
		Source: SourcePybench,
		Host:   Simulated,
		Points: []Point{{Benchmark: "fib/interp", Value: value, Unit: "s/iter"}},
	}
}

func TestStoreRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	s, err := Open(wal.OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range []float64{1.0, 1.01, 0.99} {
		if err := s.Append(runRecord(commitAt(i), v)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(Record{Kind: KindAck, AlertID: "deadbeef1234", Note: "expected"}); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(wal.OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if !s2.Recovery().Clean() {
		t.Fatalf("reopen not clean: %+v", s2.Recovery())
	}
	runs := s2.Runs()
	if len(runs) != 3 {
		t.Fatalf("got %d runs, want 3", len(runs))
	}
	if runs[1].Commit != commitAt(1) || runs[1].Points[0].Value != 1.01 {
		t.Fatalf("run 1 mismatch: %+v", runs[1])
	}
	if note, ok := s2.Acked()["deadbeef1234"]; !ok || note != "expected" {
		t.Fatalf("ack not recovered: %+v", s2.Acked())
	}
}

func TestStoreRejectsMalformedRecords(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	s, err := Open(wal.OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Append(Record{Kind: KindRun}); err == nil {
		t.Fatal("accepted a run with no points")
	}
	if err := s.Append(Record{Kind: KindAck}); err == nil {
		t.Fatal("accepted an ack with no alert id")
	}
	if err := s.Append(Record{Kind: "bogus"}); err == nil {
		t.Fatal("accepted an unknown kind")
	}
}

func TestStoreSurvivesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.jsonl")
	s, err := Open(wal.OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := s.Append(runRecord(commitAt(i), 1.0)); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(wal.OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	rep := s2.Recovery()
	if rep.TornTailBytes == 0 {
		t.Fatalf("torn tail not reported: %+v", rep)
	}
	if len(s2.Runs()) != 3 {
		t.Fatalf("recovered %d runs, want 3", len(s2.Runs()))
	}
	// The store must be appendable again after repair.
	if err := s2.Append(runRecord(commitAt(3), 1.0)); err != nil {
		t.Fatal(err)
	}
}

func TestBuildSeriesPartitionsByHostClass(t *testing.T) {
	hostA := HostClass{GOOS: "linux", GOARCH: "amd64", CPU: "Xeon"}
	hostB := HostClass{GOOS: "linux", GOARCH: "arm64", CPU: "Graviton"}
	runs := []Record{
		{Kind: KindRun, Commit: "a", Host: hostA, Points: []Point{
			{Benchmark: "BenchmarkDispatch", Value: 100, Unit: "ns/op"}}},
		{Kind: KindRun, Commit: "b", Host: hostB, Points: []Point{
			{Benchmark: "BenchmarkDispatch", Value: 300, Unit: "ns/op"}}},
		{Kind: KindRun, Commit: "c", Host: hostA, Points: []Point{
			{Benchmark: "BenchmarkDispatch", Value: 110, Unit: "ns/op"}}},
	}
	series := BuildSeries(runs)
	if len(series) != 2 {
		t.Fatalf("got %d series, want 2 (one per host class)", len(series))
	}
	for _, ser := range series {
		switch ser.Key.Host {
		case hostA.Key():
			if len(ser.Points) != 2 {
				t.Fatalf("host A series has %d points, want 2", len(ser.Points))
			}
		case hostB.Key():
			if len(ser.Points) != 1 {
				t.Fatalf("host B series has %d points, want 1", len(ser.Points))
			}
		default:
			t.Fatalf("unexpected host key %q", ser.Key.Host)
		}
	}
}

func TestParseSnapshotBenchDoc(t *testing.T) {
	doc := BenchDoc{
		Goos: "linux", Goarch: "amd64", CPU: "Xeon",
		Commit: "abc123", Branch: "main", GoVersion: "go1.22",
		TimeUTC: "2026-08-01T12:00:00Z",
		Benchmarks: []BenchEntry{
			{Name: "BenchmarkDispatchArith", Iterations: 100, NsPerOp: 754790,
				BytesPerOp: 94744, AllocsPerOp: 11102},
		},
	}
	data, _ := json.Marshal(doc)
	rec, err := ParseSnapshot(data, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Source != SourceBenchJSON || rec.Commit != "abc123" {
		t.Fatalf("provenance not carried: %+v", rec)
	}
	if rec.Host.Key() != "linux/amd64/Xeon" {
		t.Fatalf("host class %q", rec.Host.Key())
	}
	if len(rec.Points) != 1 || rec.Points[0].Value != 754790 || rec.Points[0].Unit != "ns/op" {
		t.Fatalf("points: %+v", rec.Points)
	}
	if rec.Time.IsZero() {
		t.Fatal("time_utc not parsed")
	}
}

// A pre-provenance benchjson doc (the committed BENCH_vm.json predates the
// stamp) must still ingest; attribution fields stay empty.
func TestParseSnapshotToleratesMissingProvenance(t *testing.T) {
	data, err := os.ReadFile("../../BENCH_vm.json")
	if err != nil {
		t.Skip("BENCH_vm.json not present")
	}
	rec, err := ParseSnapshot(data, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Commit != "" && len(rec.Commit) < 7 {
		t.Fatalf("unexpected commit %q", rec.Commit)
	}
	if len(rec.Points) == 0 {
		t.Fatal("no points ingested")
	}
}

func TestParseSnapshotPybenchResult(t *testing.T) {
	res := &harness.Result{
		Benchmark: "fib",
		Mode:      vm.ModeInterp,
		Invocations: []harness.Invocation{
			{TimesSec: []float64{0.9, 0.95, 0.85}},
			{TimesSec: []float64{1.0, 1.05, 0.95}},
			{TimesSec: []float64{1.1, 1.15, 1.05}},
		},
	}
	var sb strings.Builder
	if err := res.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	rec, err := ParseSnapshot([]byte(sb.String()), 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Source != SourcePybench || rec.Host != Simulated {
		t.Fatalf("pybench record misclassified: %+v", rec)
	}
	pt := rec.Points[0]
	if pt.Benchmark != "fib/interp" || pt.Unit != "s/iter" {
		t.Fatalf("point identity: %+v", pt)
	}
	if pt.Value < 0.99 || pt.Value > 1.01 {
		t.Fatalf("grand mean %v, want 1.0", pt.Value)
	}
	if !(pt.CILo < pt.Value && pt.Value < pt.CIHi) {
		t.Fatalf("CI [%v, %v] does not bracket %v", pt.CILo, pt.CIHi, pt.Value)
	}
}

func TestParseSnapshotRejectsGarbage(t *testing.T) {
	if _, err := ParseSnapshot([]byte(`{"neither":"shape"}`), 0.95); err == nil {
		t.Fatal("accepted an unrecognized document")
	}
	if _, err := ParseSnapshot([]byte(`not json`), 0.95); err == nil {
		t.Fatal("accepted non-JSON")
	}
}
