package perfstore

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// commitAt fabricates a deterministic lineage of fake commit SHAs.
func commitAt(i int) string {
	return fmt.Sprintf("%040x", 0xc0ffee0000+i)
}

// historyWith builds a run history whose fib/interp series takes the given
// values in order, one run per fake commit.
func historyWith(values []float64) []Record {
	runs := make([]Record, len(values))
	for i, v := range values {
		runs[i] = Record{
			Kind:   KindRun,
			Commit: commitAt(i),
			Branch: "main",
			Time:   time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * 24 * time.Hour),
			Source: SourcePybench,
			Host:   Simulated,
			Points: []Point{{Benchmark: "fib/interp", Value: v, Unit: "s/iter"}},
		}
	}
	return runs
}

func TestAnalyzeLocalizesInjectedRegression(t *testing.T) {
	// 7 runs at the old level, then a 20% regression landing at run 7.
	values := []float64{1.00, 1.01, 0.99, 1.00, 1.00, 1.01, 0.99,
		1.20, 1.21, 1.19, 1.20, 1.20}
	runs := historyWith(values)
	rep := Analyze(runs, nil, AnalyzeOptions{})

	if len(rep.Changepoints) != 1 {
		t.Fatalf("got %d changepoints, want 1: %+v", len(rep.Changepoints), rep.Changepoints)
	}
	cp := rep.Changepoints[0]
	if cp.Index != 7 {
		t.Fatalf("changepoint at index %d, want 7", cp.Index)
	}
	if !cp.Regression {
		t.Fatal("20% slowdown not classified as regression")
	}
	if cp.FromCommit != commitAt(6) || cp.ToCommit != commitAt(7) {
		t.Fatalf("attributed to %s..%s, want %s..%s",
			cp.FromCommit, cp.ToCommit, commitAt(6), commitAt(7))
	}
	if cp.DeltaPct < 15 || cp.DeltaPct > 25 {
		t.Fatalf("delta %.1f%%, want ≈20%%", cp.DeltaPct)
	}
	if rep.FreshRegressions != 1 {
		t.Fatalf("FreshRegressions = %d, want 1", rep.FreshRegressions)
	}
}

func TestAnalyzeAckSilencesAlert(t *testing.T) {
	values := []float64{1, 1, 1, 1, 1, 1, 1, 1.2, 1.2, 1.2, 1.2, 1.2}
	runs := historyWith(values)
	rep := Analyze(runs, nil, AnalyzeOptions{})
	if rep.FreshRegressions != 1 {
		t.Fatalf("precondition: want 1 fresh regression, got %d", rep.FreshRegressions)
	}
	id := rep.Changepoints[0].ID

	acked := map[string]string{id: "accepted cost of feature X"}
	rep2 := Analyze(runs, acked, AnalyzeOptions{})
	if rep2.FreshRegressions != 0 {
		t.Fatalf("acked alert still fresh: %+v", rep2.Changepoints)
	}
	if rep2.AckedChangepoints != 1 || !rep2.Changepoints[0].Acked {
		t.Fatalf("ack not folded in: %+v", rep2.Changepoints[0])
	}
	if rep2.Changepoints[0].AckNote != "accepted cost of feature X" {
		t.Fatalf("ack note lost: %q", rep2.Changepoints[0].AckNote)
	}
}

func TestAlertIDIsStableAsHistoryGrows(t *testing.T) {
	values := []float64{1, 1, 1, 1, 1, 1, 1, 1.2, 1.2, 1.2, 1.2, 1.2}
	id1 := Analyze(historyWith(values), nil, AnalyzeOptions{}).Changepoints[0].ID
	grown := append(append([]float64{}, values...), 1.2, 1.2, 1.2)
	rep2 := Analyze(historyWith(grown), nil, AnalyzeOptions{})
	if len(rep2.Changepoints) != 1 {
		t.Fatalf("grown history: %d changepoints, want 1", len(rep2.Changepoints))
	}
	if rep2.Changepoints[0].ID != id1 {
		t.Fatalf("alert id changed as history grew: %s vs %s", id1, rep2.Changepoints[0].ID)
	}
}

func TestAnalyzeImprovementIsNotAnAlert(t *testing.T) {
	values := []float64{1.2, 1.2, 1.2, 1.2, 1.2, 1.2, 1, 1, 1, 1, 1, 1}
	rep := Analyze(historyWith(values), nil, AnalyzeOptions{})
	if len(rep.Changepoints) != 1 {
		t.Fatalf("got %d changepoints, want 1", len(rep.Changepoints))
	}
	if rep.Changepoints[0].Regression {
		t.Fatal("speedup classified as regression")
	}
	if rep.FreshRegressions != 0 {
		t.Fatalf("improvement raised a regression alert: %+v", rep)
	}
}

func TestAnalyzeFlatSeriesHasNoChangepoints(t *testing.T) {
	values := make([]float64, 10)
	for i := range values {
		values[i] = 1.0
	}
	rep := Analyze(historyWith(values), nil, AnalyzeOptions{})
	if len(rep.Changepoints) != 0 {
		t.Fatalf("flat series produced changepoints: %+v", rep.Changepoints)
	}
	if rep.FreshRegressions != 0 {
		t.Fatalf("flat series raised alerts")
	}
}

func TestAnalyzePracticalEffectFloor(t *testing.T) {
	// A 1% step is segmentation detail, not an alert (default floor 5%).
	values := []float64{1, 1, 1, 1, 1, 1, 1.01, 1.01, 1.01, 1.01, 1.01, 1.01}
	rep := Analyze(historyWith(values), nil, AnalyzeOptions{})
	if len(rep.Changepoints) != 0 {
		t.Fatalf("sub-floor shift alerted: %+v", rep.Changepoints)
	}
}

func TestAnalyzeShortSeriesIsSkipped(t *testing.T) {
	rep := Analyze(historyWith([]float64{1, 1.5, 1.5}), nil, AnalyzeOptions{})
	if len(rep.Changepoints) != 0 {
		t.Fatalf("3-run series produced changepoints: %+v", rep.Changepoints)
	}
	if len(rep.Series) != 1 || rep.Series[0].Runs != 3 {
		t.Fatalf("series summary missing: %+v", rep.Series)
	}
}

func TestTrendLineFormatsArrowAndFilter(t *testing.T) {
	values := []float64{1, 1, 1, 1, 1, 1, 1, 1.2, 1.2, 1.2, 1.2, 1.2}
	runs := historyWith(values)
	line := TrendLine(runs, nil, "fib", 8)
	if line == "" {
		t.Fatal("no trend line for matching benchmark")
	}
	if !strings.Contains(line, "fib/interp") || !strings.Contains(line, "↑") {
		t.Fatalf("trend line missing series or arrow: %q", line)
	}
	if !strings.Contains(line, "fresh alert") {
		t.Fatalf("trend line hides the fresh alert: %q", line)
	}
	if got := TrendLine(runs, nil, "nbody", 8); got != "" {
		t.Fatalf("non-matching benchmark produced a line: %q", got)
	}
}

func TestRenderReportMentionsAttribution(t *testing.T) {
	values := []float64{1, 1, 1, 1, 1, 1, 1, 1.2, 1.2, 1.2, 1.2, 1.2}
	rep := Analyze(historyWith(values), nil, AnalyzeOptions{})
	var sb strings.Builder
	rep.Render(&sb)
	out := sb.String()
	wantRange := commitAt(6)[:12] + ".." + commitAt(7)[:12]
	if !strings.Contains(out, wantRange) {
		t.Fatalf("report lacks attribution range %q:\n%s", wantRange, out)
	}
	if !strings.Contains(out, "REGRESSION") || !strings.Contains(out, "fresh") {
		t.Fatalf("report lacks alert status:\n%s", out)
	}

	var js strings.Builder
	if err := rep.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"fresh_regressions": 1`) {
		t.Fatalf("JSON report lacks fresh_regressions:\n%s", js.String())
	}
}
