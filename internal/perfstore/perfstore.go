// Package perfstore is the longitudinal perf time-series layer: an
// append-only history of benchmark runs with provenance, stored as a
// CRC-framed JSONL journal (internal/wal.LineJournal) so the committed
// BENCH_history.jsonl survives crashes mid-append with the same torn-tail /
// corrupt-record recovery semantics as the checkpoint journal.
//
// The paper's methodology detects steady state *within* a run via
// changepoint analysis; this package applies the identical machinery
// (stats.PELT) *across* runs, so production regression detection becomes a
// trajectory problem: every record carries its commit SHA, branch, and
// host class, each benchmark × host-class series is scanned for level
// shifts, and every detected shift is attributed to the commit range
// between the two adjacent records. Acknowledged changepoints are recorded
// in the history itself (Kind "ack"), so the alert state needs no side
// file and travels with the data.
package perfstore

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/wal"
)

// Record kinds.
const (
	KindRun = "run" // one ingested benchmark run
	KindAck = "ack" // operator acknowledgement of one alert
)

// Sources a run record can come from.
const (
	SourceBenchJSON = "benchjson" // wall-clock go-test microbenchmarks (BENCH_vm.json)
	SourcePybench   = "pybench"   // simulated pinned-seed experiment (pybench -json)
)

// HostClass identifies the hardware class a wall-clock measurement is
// comparable within. Wall-clock series are partitioned on it; mixing hosts
// in one series would turn every CI-runner change into a fake regression.
type HostClass struct {
	GOOS   string `json:"goos,omitempty"`
	GOARCH string `json:"goarch,omitempty"`
	CPU    string `json:"cpu,omitempty"`
}

// Simulated is the host class of pybench results: simulated times are a
// pure function of (workload, cost model, seed), so every host is the same
// class and the whole fleet shares one series.
var Simulated = HostClass{GOOS: "any", GOARCH: "any", CPU: "simulated"}

// Key renders the class as a stable partition key.
func (h HostClass) Key() string {
	norm := func(s string) string {
		if s == "" {
			return "unknown"
		}
		return s
	}
	return norm(h.GOOS) + "/" + norm(h.GOARCH) + "/" + norm(h.CPU)
}

// Point is one benchmark's measurement inside one run.
type Point struct {
	// Benchmark names the series within the run ("BenchmarkDispatchArith",
	// "fib/interp", ...).
	Benchmark string `json:"benchmark"`
	// Value is the canonical scalar tracked over time (Unit says what it
	// is). Lower is always better: both supported units are time costs.
	Value float64 `json:"value"`
	// Unit is "ns/op" (wall-clock microbenchmarks) or "s/iter" (simulated
	// experiment grand mean).
	Unit string `json:"unit"`
	// BytesPerOp/AllocsPerOp ride along for wall-clock points.
	BytesPerOp  int64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64 `json:"allocs_per_op,omitempty"`
	// CILo/CIHi/Confidence carry the Kalibera–Jones interval for pinned-
	// seed experiment points (zero for wall-clock points, which are single
	// numbers).
	CILo       float64 `json:"ci_lo,omitempty"`
	CIHi       float64 `json:"ci_hi,omitempty"`
	Confidence float64 `json:"confidence,omitempty"`
}

// Record is one history entry: either a run (provenance + points) or an
// acknowledgement of one alert.
type Record struct {
	Kind string `json:"kind"`

	// Run provenance.
	Commit    string    `json:"commit,omitempty"`
	Branch    string    `json:"branch,omitempty"`
	Time      time.Time `json:"time,omitempty"` // UTC
	GoVersion string    `json:"go_version,omitempty"`
	Source    string    `json:"source,omitempty"`
	Host      HostClass `json:"host,omitempty"`
	Points    []Point   `json:"points,omitempty"`

	// Ack payload.
	AlertID string `json:"alert_id,omitempty"`
	Note    string `json:"note,omitempty"`
}

// ShortCommit abbreviates the commit SHA for report rows.
func (r Record) ShortCommit() string {
	if len(r.Commit) > 12 {
		return r.Commit[:12]
	}
	if r.Commit == "" {
		return "(unknown)"
	}
	return r.Commit
}

// Store is the open history: a line journal plus the decoded records.
type Store struct {
	j        *wal.LineJournal
	records  []Record
	recovery wal.RecoveryReport
}

// Open recovers the history at path (absent = empty history). Damage is
// repaired on disk wal-style before the store is returned; Recovery()
// reports what was found.
func Open(fsys wal.FS, path string) (*Store, error) {
	j, payloads, rep, err := wal.OpenLines(fsys, path)
	if err != nil {
		return nil, err
	}
	s := &Store{j: j, recovery: rep}
	for i, p := range payloads {
		var rec Record
		if err := json.Unmarshal(p, &rec); err != nil {
			//benchlint:allow uncheckederr — cleanup; the parse error wins
			j.Close()
			return nil, fmt.Errorf("perfstore: record %d of %s: %w", i, path, err)
		}
		s.records = append(s.records, rec)
	}
	return s, nil
}

// Recovery reports the journal damage (if any) found at Open.
func (s *Store) Recovery() wal.RecoveryReport { return s.recovery }

// Records returns all decoded records in append order.
func (s *Store) Records() []Record { return s.records }

// Runs returns only the run records, in append (i.e. chronological-commit)
// order — the series order every analysis uses.
func (s *Store) Runs() []Record {
	var runs []Record
	for _, r := range s.records {
		if r.Kind == KindRun {
			runs = append(runs, r)
		}
	}
	return runs
}

// Acked returns the set of acknowledged alert IDs with their notes.
func (s *Store) Acked() map[string]string {
	acked := map[string]string{}
	for _, r := range s.records {
		if r.Kind == KindAck && r.AlertID != "" {
			acked[r.AlertID] = r.Note
		}
	}
	return acked
}

// Append validates rec, marshals it compactly, and durably appends it.
func (s *Store) Append(rec Record) error {
	switch rec.Kind {
	case KindRun:
		if len(rec.Points) == 0 {
			return fmt.Errorf("perfstore: run record has no points")
		}
	case KindAck:
		if rec.AlertID == "" {
			return fmt.Errorf("perfstore: ack record has no alert id")
		}
	default:
		return fmt.Errorf("perfstore: unknown record kind %q", rec.Kind)
	}
	if !rec.Time.IsZero() {
		rec.Time = rec.Time.UTC().Truncate(time.Second)
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("perfstore: encoding record: %w", err)
	}
	if err := s.j.Append(payload); err != nil {
		return err
	}
	s.records = append(s.records, rec)
	return nil
}

// Close releases the journal append handle.
func (s *Store) Close() error { return s.j.Close() }

// SeriesKey partitions points: one series per benchmark × host class.
type SeriesKey struct {
	Benchmark string `json:"benchmark"`
	Host      string `json:"host"`
}

func (k SeriesKey) String() string { return k.Benchmark + " @ " + k.Host }

// RunPoint is one series sample with its provenance attached.
type RunPoint struct {
	RunIndex int       `json:"run_index"` // index into Runs()
	Commit   string    `json:"commit"`
	Time     time.Time `json:"time"`
	Value    float64   `json:"value"`
}

// Series is one benchmark × host-class trajectory in run order.
type Series struct {
	Key    SeriesKey  `json:"key"`
	Unit   string     `json:"unit"`
	Points []RunPoint `json:"points"`
}

// Values extracts the raw value vector (PELT input).
func (s Series) Values() []float64 {
	out := make([]float64, len(s.Points))
	for i, p := range s.Points {
		out[i] = p.Value
	}
	return out
}

// BuildSeries partitions the runs into per-benchmark × host-class series,
// sorted by key for deterministic iteration.
func BuildSeries(runs []Record) []Series {
	byKey := map[SeriesKey]*Series{}
	for i, run := range runs {
		host := run.Host.Key()
		for _, pt := range run.Points {
			key := SeriesKey{Benchmark: pt.Benchmark, Host: host}
			ser, ok := byKey[key]
			if !ok {
				ser = &Series{Key: key, Unit: pt.Unit}
				byKey[key] = ser
			}
			ser.Points = append(ser.Points, RunPoint{
				RunIndex: i, Commit: run.Commit, Time: run.Time, Value: pt.Value,
			})
		}
	}
	keys := make([]SeriesKey, 0, len(byKey))
	for k := range byKey {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].Benchmark != keys[b].Benchmark {
			return keys[a].Benchmark < keys[b].Benchmark
		}
		return keys[a].Host < keys[b].Host
	})
	out := make([]Series, len(keys))
	for i, k := range keys {
		out[i] = *byKey[k]
	}
	return out
}

// AlertID derives the stable identifier of a changepoint from what defines
// it — the series and the commit range it landed in — so the same alert
// keeps its id as more runs are appended, and an ack recorded today still
// matches tomorrow.
func AlertID(key SeriesKey, fromCommit, toCommit string, regression bool) string {
	dir := "improvement"
	if regression {
		dir = "regression"
	}
	sum := sha256.Sum256([]byte(strings.Join([]string{
		key.Benchmark, key.Host, fromCommit, toCommit, dir,
	}, "|")))
	return hex.EncodeToString(sum[:6])
}
