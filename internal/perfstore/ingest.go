package perfstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/harness"
	"repro/internal/stats"
)

// BenchDoc is cmd/benchjson's document format (a stable public shape: the
// committed BENCH_vm.json), owned by internal/benchfmt since the memory
// gate moved there. The provenance fields are stamped by benchjson since
// v0.4; older docs simply lack them, and ingestion tolerates that —
// attribution then relies on flags or git at ingest time.
type BenchDoc = benchfmt.Doc

// BenchEntry is one wall-clock microbenchmark measurement.
type BenchEntry = benchfmt.Entry

// FromBenchDoc converts a benchjson document into a run record. Wall-clock
// numbers are host-dependent, so the host class is taken from the doc's
// goos/goarch/cpu stamp and partitions the series.
func FromBenchDoc(doc *BenchDoc) (Record, error) {
	if len(doc.Benchmarks) == 0 {
		return Record{}, fmt.Errorf("perfstore: benchjson doc has no benchmarks")
	}
	rec := Record{
		Kind:      KindRun,
		Source:    SourceBenchJSON,
		Commit:    doc.Commit,
		Branch:    doc.Branch,
		GoVersion: doc.GoVersion,
		Host:      HostClass{GOOS: doc.Goos, GOARCH: doc.Goarch, CPU: doc.CPU},
	}
	if doc.TimeUTC != "" {
		t, err := time.Parse(time.RFC3339, doc.TimeUTC)
		if err != nil {
			return Record{}, fmt.Errorf("perfstore: bad time_utc %q: %w", doc.TimeUTC, err)
		}
		rec.Time = t.UTC()
	}
	for _, e := range doc.Benchmarks {
		rec.Points = append(rec.Points, Point{
			Benchmark:   e.Name,
			Value:       e.NsPerOp,
			Unit:        "ns/op",
			BytesPerOp:  e.BytesPerOp,
			AllocsPerOp: e.AllocsPerOp,
		})
	}
	return rec, nil
}

// FromResult converts a pybench experiment result into a run record: one
// point carrying the Kalibera–Jones grand mean and CI of the pinned-seed
// experiment. Simulated times are host-independent, so the host class is
// Simulated and the whole fleet contributes to one series.
func FromResult(res *harness.Result, confidence float64) (Record, error) {
	if len(res.Invocations) == 0 {
		return Record{}, fmt.Errorf("perfstore: result has no invocations")
	}
	if confidence <= 0 || confidence >= 1 {
		confidence = 0.95
	}
	h := res.Hierarchical()
	ci := stats.KaliberaMeanCI(h, confidence)
	rec := Record{
		Kind:   KindRun,
		Source: SourcePybench,
		Host:   Simulated,
		Points: []Point{{
			Benchmark:  fmt.Sprintf("%s/%s", res.Benchmark, res.Mode),
			Value:      stats.DecomposeVariance(h).GrandMean,
			Unit:       "s/iter",
			CILo:       ci.Lo,
			CIHi:       ci.Hi,
			Confidence: confidence,
		}},
	}
	return rec, nil
}

// ParseSnapshot sniffs and converts one ingestible document: a benchjson
// doc (BENCH_vm.json shape, has a "benchmarks" array) or a pybench result
// (`pybench -bench NAME -json`, has an "Invocations" array).
func ParseSnapshot(data []byte, confidence float64) (Record, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return Record{}, fmt.Errorf("perfstore: snapshot is not a JSON object: %w", err)
	}
	if _, ok := probe["benchmarks"]; ok {
		doc := &BenchDoc{}
		if err := json.Unmarshal(data, doc); err != nil {
			return Record{}, fmt.Errorf("perfstore: decoding benchjson doc: %w", err)
		}
		return FromBenchDoc(doc)
	}
	if _, ok := probe["Invocations"]; ok {
		res, err := harness.ReadResultJSON(bytes.NewReader(data))
		if err != nil {
			return Record{}, fmt.Errorf("perfstore: decoding pybench result: %w", err)
		}
		return FromResult(res, confidence)
	}
	return Record{}, fmt.Errorf("perfstore: unrecognized snapshot shape (want a benchjson doc or a pybench -json result)")
}
