package perfstore

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/report"
)

// Render writes the human trend report: one aligned row per series with its
// sparkline history, then the alert list with fresh alerts separated from
// acknowledged ones.
func (tr TrendReport) Render(w io.Writer) {
	t := report.NewTable(
		fmt.Sprintf("Longitudinal trend — %d run(s), %d series", tr.Runs, len(tr.Series)),
		"benchmark", "host class", "runs", "first", "last", "Δ%", "dir", "history")
	for _, st := range tr.Series {
		t.AddRow(st.Key.Benchmark, st.Key.Host, st.Runs,
			report.FormatFloat(st.First), report.FormatFloat(st.Last),
			fmt.Sprintf("%+.1f", st.DeltaPct), report.TrendArrow(st.DeltaPct), st.Spark)
	}
	if tr.FreshRegressions > 0 {
		t.AddFootnote("%d fresh unacknowledged regression alert(s) — see below", tr.FreshRegressions)
	}
	t.Render(w)

	if len(tr.Changepoints) == 0 {
		fmt.Fprintln(w, "\nNo changepoints detected.")
		return
	}
	fmt.Fprintln(w)
	at := report.NewTable("Changepoints (commit-attributed)",
		"id", "benchmark", "host class", "landed in", "before", "after", "Δ%", "kind", "status")
	for _, cp := range tr.Changepoints {
		kind := "improvement"
		if cp.Regression {
			kind = "REGRESSION"
		}
		status := "fresh"
		if cp.Acked {
			status = "acked"
			if cp.AckNote != "" {
				status += ": " + cp.AckNote
			}
		} else if !cp.Regression {
			status = "-"
		}
		at.AddRow(cp.ID, cp.Key.Benchmark, cp.Key.Host, cp.Range(),
			report.FormatFloat(cp.Before), report.FormatFloat(cp.After),
			fmt.Sprintf("%+.1f", cp.DeltaPct), kind, status)
	}
	at.AddFootnote("ack a reviewed alert with: benchtrack ack -history <file> <id>")
	at.Render(w)
}

// WriteJSON emits the stable machine-readable report (deterministic field
// order via struct tags; series and changepoints already sorted by key).
func (tr TrendReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr)
}
