package perfstore

import (
	"fmt"
	"time"

	"repro/internal/report"
	"repro/internal/stats"
)

// AnalyzeOptions tune the trajectory scan.
type AnalyzeOptions struct {
	// Penalty is passed to stats.PELT (<= 0 selects its robust default).
	Penalty float64
	// MinDeltaPct is the practical-effect floor: a level shift below it is
	// segmentation detail, not an alert. Default 5.
	MinDeltaPct float64
	// MinRuns is the shortest series worth scanning (PELT needs >= 4).
	// Default 5.
	MinRuns int
}

func (o AnalyzeOptions) withDefaults() AnalyzeOptions {
	if o.MinDeltaPct <= 0 {
		o.MinDeltaPct = 5
	}
	if o.MinRuns < 4 {
		o.MinRuns = 5
	}
	return o
}

// Changepoint is one localized level shift in one series, attributed to
// the commit range between the adjacent runs.
type Changepoint struct {
	ID    string    `json:"id"`
	Key   SeriesKey `json:"key"`
	Unit  string    `json:"unit"`
	Index int       `json:"index"` // series index where the new level starts
	// Before/After are the segment means on each side of the shift.
	Before   float64 `json:"before"`
	After    float64 `json:"after"`
	DeltaPct float64 `json:"delta_pct"` // (After-Before)/Before × 100
	// Regression: the new level is slower (both units are time costs).
	Regression bool `json:"regression"`
	// FromCommit..ToCommit is the attribution range: the shift landed in
	// (FromCommit, ToCommit] — FromCommit is the last run at the old level,
	// ToCommit the first at the new one.
	FromCommit string    `json:"from_commit"`
	ToCommit   string    `json:"to_commit"`
	At         time.Time `json:"at,omitempty"` // time of the ToCommit run
	// Acked: an operator accepted this shift (Kind "ack" in the history).
	Acked   bool   `json:"acked"`
	AckNote string `json:"ack_note,omitempty"`
}

// Range renders the attribution range for report rows.
func (c Changepoint) Range() string {
	short := func(s string) string {
		if len(s) > 12 {
			return s[:12]
		}
		if s == "" {
			return "(unknown)"
		}
		return s
	}
	return short(c.FromCommit) + ".." + short(c.ToCommit)
}

// SeriesTrend is the per-series summary row of the trend report.
type SeriesTrend struct {
	Key      SeriesKey `json:"key"`
	Unit     string    `json:"unit"`
	Runs     int       `json:"runs"`
	First    float64   `json:"first"`
	Last     float64   `json:"last"`
	DeltaPct float64   `json:"delta_pct"` // last vs first
	// Spark is the sparkline over the (windowed) series.
	Spark string `json:"spark"`
	// Changepoints restricted to this series.
	Changepoints []Changepoint `json:"changepoints,omitempty"`
}

// TrendReport is the full analysis outcome: stable, deterministic, and
// JSON-serializable as-is.
type TrendReport struct {
	Runs         int           `json:"runs"`
	Series       []SeriesTrend `json:"series"`
	Changepoints []Changepoint `json:"changepoints,omitempty"`
	// Fresh counts unacknowledged regressions — the alert condition.
	FreshRegressions  int `json:"fresh_regressions"`
	AckedChangepoints int `json:"acked_changepoints"`
}

// Analyze partitions the history into series, runs PELT over each, and
// attributes every detected level shift to its commit range. Acked alert
// ids are folded in from the history's ack records.
func Analyze(runs []Record, acked map[string]string, opts AnalyzeOptions) TrendReport {
	opts = opts.withDefaults()
	rep := TrendReport{Runs: len(runs)}
	for _, ser := range BuildSeries(runs) {
		st := SeriesTrend{
			Key:  ser.Key,
			Unit: ser.Unit,
			Runs: len(ser.Points),
		}
		values := ser.Values()
		if n := len(values); n > 0 {
			st.First = values[0]
			st.Last = values[n-1]
			if st.First != 0 {
				st.DeltaPct = 100 * (st.Last - st.First) / st.First
			}
			st.Spark = report.Sparkline(values)
		}
		if len(values) >= opts.MinRuns {
			for _, idx := range stats.PELT(values, opts.Penalty) {
				cp := attribute(ser, idx)
				if abs(cp.DeltaPct) < opts.MinDeltaPct {
					continue
				}
				if note, ok := acked[cp.ID]; ok {
					cp.Acked = true
					cp.AckNote = note
				}
				st.Changepoints = append(st.Changepoints, cp)
			}
		}
		rep.Series = append(rep.Series, st)
		rep.Changepoints = append(rep.Changepoints, st.Changepoints...)
	}
	for _, cp := range rep.Changepoints {
		switch {
		case cp.Acked:
			rep.AckedChangepoints++
		case cp.Regression:
			rep.FreshRegressions++
		}
	}
	return rep
}

// attribute turns one PELT segment boundary into an attributed changepoint:
// the shift landed somewhere in the commit range between the last run at
// the old level and the first run at the new one.
func attribute(ser Series, idx int) Changepoint {
	values := ser.Values()
	before := stats.Mean(values[:idx])
	after := stats.Mean(values[idx:])
	deltaPct := 0.0
	if before != 0 {
		deltaPct = 100 * (after - before) / before
	}
	regression := after > before
	from := ser.Points[idx-1]
	to := ser.Points[idx]
	return Changepoint{
		ID:         AlertID(ser.Key, from.Commit, to.Commit, regression),
		Key:        ser.Key,
		Unit:       ser.Unit,
		Index:      idx,
		Before:     before,
		After:      after,
		DeltaPct:   deltaPct,
		Regression: regression,
		FromCommit: from.Commit,
		ToCommit:   to.Commit,
		At:         to.Time,
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// TrendLine renders the one-line trend summary benchgate prints next to
// its verdict: the last-N window of every series matching benchmark
// ("" = all), each with a direction arrow and its fresh-alert count.
// Returns "" when the history holds no matching series.
func TrendLine(runs []Record, acked map[string]string, benchmark string, lastN int) string {
	if lastN <= 0 {
		lastN = 10
	}
	rep := Analyze(runs, acked, AnalyzeOptions{})
	freshBySeries := map[SeriesKey]int{}
	for _, cp := range rep.Changepoints {
		if cp.Regression && !cp.Acked {
			freshBySeries[cp.Key]++
		}
	}
	var parts []string
	for _, ser := range BuildSeries(runs) {
		if benchmark != "" && !matchesBenchmark(ser.Key.Benchmark, benchmark) {
			continue
		}
		values := ser.Values()
		w := values
		if len(w) > lastN {
			w = w[len(w)-lastN:]
		}
		deltaPct := 0.0
		if w[0] != 0 {
			deltaPct = 100 * (w[len(w)-1] - w[0]) / w[0]
		}
		part := fmt.Sprintf("%s %s last %d: %s %.4g→%.4g %s (%+.1f%%)",
			ser.Key.Benchmark, report.TrendArrow(deltaPct), len(w),
			report.Sparkline(w), w[0], w[len(w)-1], ser.Unit, deltaPct)
		if fresh := freshBySeries[ser.Key]; fresh > 0 {
			part += fmt.Sprintf(" [%d fresh alert(s)]", fresh)
		}
		parts = append(parts, part)
	}
	if len(parts) == 0 {
		return ""
	}
	out := fmt.Sprintf("trend (%d runs): ", rep.Runs)
	for i, p := range parts {
		if i > 0 {
			out += "; "
		}
		out += p
	}
	return out
}

// matchesBenchmark matches a series benchmark name against a bare
// benchmark: exact, or prefix up to a "/mode" suffix ("fib" matches
// "fib/interp").
func matchesBenchmark(seriesName, bench string) bool {
	if seriesName == bench {
		return true
	}
	return len(seriesName) > len(bench) &&
		seriesName[:len(bench)] == bench && seriesName[len(bench)] == '/'
}
