package noise

import (
	"math"
	"testing"

	"repro/internal/stats"
)

func TestNoNoiseIsIdentity(t *testing.T) {
	src := NewSource(None(), 1, 0)
	for i := 0; i < 10; i++ {
		if got := src.Apply(2.5); got != 2.5 {
			t.Fatalf("no-noise Apply(2.5) = %v", got)
		}
	}
}

func TestDeterministicPerSeedAndInvocation(t *testing.T) {
	p := Default()
	a := NewSource(p, 42, 3)
	b := NewSource(p, 42, 3)
	for i := 0; i < 50; i++ {
		if a.Apply(1) != b.Apply(1) {
			t.Fatal("same (seed, invocation) must replay identically")
		}
	}
	c := NewSource(p, 42, 4)
	d := NewSource(p, 43, 3)
	if c.InvocationFactor() == a.InvocationFactor() &&
		d.InvocationFactor() == a.InvocationFactor() {
		t.Fatal("different invocations/seeds should differ")
	}
}

func TestInvocationFactorDistribution(t *testing.T) {
	p := Default()
	var factors []float64
	for i := 0; i < 3000; i++ {
		factors = append(factors, NewSource(p, 99, i).InvocationFactor())
	}
	m := stats.Mean(factors)
	if math.Abs(m-1) > 0.01 {
		t.Fatalf("invocation factor mean %v, want ~1", m)
	}
	// Log of a lognormal has std == sigma.
	logs := make([]float64, len(factors))
	for i, f := range factors {
		logs[i] = math.Log(f)
	}
	if s := stats.StdDev(logs); math.Abs(s-p.InvocationSigma) > 0.003 {
		t.Fatalf("log-factor std %v, want %v", s, p.InvocationSigma)
	}
}

func TestSpikesAreRareAndPositive(t *testing.T) {
	p := Params{SpikeProb: 0.05, SpikeScale: 0.5}
	src := NewSource(p, 7, 0)
	spikes := 0
	const n = 20000
	for i := 0; i < n; i++ {
		v := src.Apply(1)
		if v < 1 {
			t.Fatalf("spike-only noise must never run faster than base: %v", v)
		}
		if v > 1.001 {
			spikes++
		}
	}
	rate := float64(spikes) / n
	if rate < 0.03 || rate > 0.07 {
		t.Fatalf("spike rate %v, want ~0.05", rate)
	}
}

func TestDrift(t *testing.T) {
	p := Params{DriftPerIter: 0.001}
	src := NewSource(p, 1, 0)
	first := src.Apply(1)
	var last float64
	for i := 0; i < 99; i++ {
		last = src.Apply(1)
	}
	if !(last > first) {
		t.Fatalf("drift should slow later iterations: first %v last %v", first, last)
	}
	if math.Abs(last-1.099) > 1e-9 {
		t.Fatalf("drift magnitude %v, want 1.099", last)
	}
}

func TestTwoLevelStructureVisibleInVarianceDecomposition(t *testing.T) {
	// The whole point of the noise model: the invocation effect must show
	// up as a between-invocation variance component.
	p := Default()
	const inv, iter = 60, 40
	times := make([][]float64, inv)
	for i := range times {
		src := NewSource(p, 2024, i)
		row := make([]float64, iter)
		for j := range row {
			row[j] = src.Apply(1)
		}
		times[i] = row
	}
	vd := stats.DecomposeVariance(stats.HierarchicalSample{Times: times})
	if vd.BetweenVar <= 0 {
		t.Fatal("invocation effect not visible in decomposition")
	}
	// sigma_inv = 2%: between std should be in the right ballpark.
	betweenStd := math.Sqrt(vd.BetweenVar)
	if betweenStd < 0.01 || betweenStd > 0.04 {
		t.Fatalf("between std %v, want ~0.02", betweenStd)
	}
}

func TestPresets(t *testing.T) {
	if !(Quiet().InvocationSigma < Default().InvocationSigma &&
		Default().InvocationSigma < Noisy().InvocationSigma) {
		t.Fatal("preset ordering broken")
	}
	if None() != (Params{}) {
		t.Fatal("None must be the zero value")
	}
}

func TestApplyScalesWithBase(t *testing.T) {
	p := Default()
	a := NewSource(p, 5, 0)
	b := NewSource(p, 5, 0)
	for i := 0; i < 20; i++ {
		x := a.Apply(1.0)
		y := b.Apply(10.0)
		if math.Abs(y/x-10) > 1e-9 {
			t.Fatalf("noise must be multiplicative in base: %v vs %v", x, y)
		}
	}
}
