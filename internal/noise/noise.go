// Package noise simulates the measurement-noise structure of real
// benchmarking machines, deterministically from a seed. The model is
// two-level, matching what the rigorous-benchmarking literature documents
// (Kalibera & Jones ISMM'13, pyperf's system-tuning docs):
//
//   - a per-invocation multiplicative effect (address-space layout, CPU
//     frequency lottery, process placement) drawn once per VM invocation;
//   - per-iteration multiplicative jitter (timer quantization, minor
//     scheduling noise);
//   - rare additive interference spikes (daemons, interrupts);
//   - an optional slow drift (thermal throttling) across iterations.
//
// This structure is what gives the statistics real work to do: naive
// methodologies that treat all iterations as independent samples are
// demonstrably misled by the invocation-level component.
package noise

import "repro/internal/stats"

// Params configures the noise model. The zero value means "no noise".
type Params struct {
	// InvocationSigma is the lognormal σ of the per-invocation multiplier.
	InvocationSigma float64
	// IterationSigma is the lognormal σ of the per-iteration multiplier.
	IterationSigma float64
	// SpikeProb is the per-iteration probability of an interference spike.
	SpikeProb float64
	// SpikeScale is the mean spike magnitude as a fraction of the base time
	// (spikes are exponentially distributed).
	SpikeScale float64
	// DriftPerIter adds a multiplicative drift of (1 + DriftPerIter*iter),
	// modelling thermal throttling; usually 0.
	DriftPerIter float64
}

// Default returns the calibrated noise model: ~2% invocation effect, ~0.6%
// iteration jitter, 2% spike probability at ~8% magnitude. These levels sit
// in the middle of what timing studies report for untuned Linux desktops.
func Default() Params {
	return Params{
		InvocationSigma: 0.020,
		IterationSigma:  0.006,
		SpikeProb:       0.02,
		SpikeScale:      0.08,
	}
}

// Quiet returns a lab-grade tuned-machine model (isolcpus, pinned
// frequency): tiny invocation effect, minimal jitter.
func Quiet() Params {
	return Params{
		InvocationSigma: 0.003,
		IterationSigma:  0.001,
		SpikeProb:       0.001,
		SpikeScale:      0.02,
	}
}

// Noisy returns a shared-machine model (CI runners, laptops on battery).
func Noisy() Params {
	return Params{
		InvocationSigma: 0.06,
		IterationSigma:  0.02,
		SpikeProb:       0.08,
		SpikeScale:      0.25,
		DriftPerIter:    0.0002,
	}
}

// None disables noise entirely (pure cost-model time).
func None() Params { return Params{} }

// Source generates the noise for one VM invocation.
type Source struct {
	p         Params
	rng       *stats.RNG
	invFactor float64
	iter      int
}

// NewSource creates the noise stream for invocation index inv under the
// experiment seed. Different (seed, inv) pairs are independent.
func NewSource(p Params, seed uint64, inv int) *Source {
	rng := stats.NewRNG(seed).Split(uint64(inv) + 0x5151)
	invFactor := 1.0
	if p.InvocationSigma > 0 {
		invFactor = rng.LogNormal(0, p.InvocationSigma)
	}
	return &Source{p: p, rng: rng, invFactor: invFactor}
}

// InvocationFactor exposes the drawn per-invocation multiplier (useful for
// tests and variance-decomposition validation).
func (s *Source) InvocationFactor() float64 { return s.invFactor }

// Apply perturbs one iteration's base time (seconds) and advances the
// stream. Iterations must be applied in order.
func (s *Source) Apply(base float64) float64 {
	t := base * s.invFactor
	if s.p.IterationSigma > 0 {
		t *= s.rng.LogNormal(0, s.p.IterationSigma)
	}
	if s.p.SpikeProb > 0 && s.rng.Float64() < s.p.SpikeProb {
		t += base * s.rng.Exp(s.p.SpikeScale)
	}
	if s.p.DriftPerIter != 0 {
		t *= 1 + s.p.DriftPerIter*float64(s.iter)
	}
	s.iter++
	return t
}
