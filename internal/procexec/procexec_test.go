package procexec

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"testing"
	"time"
)

// TestMain doubles as the worker binary: when PROCEXEC_TEST_WORKER is set,
// the test binary re-execs into a protocol server instead of running
// tests — the same trick the harness plays with `pybench -worker`.
func TestMain(m *testing.M) {
	switch os.Getenv("PROCEXEC_TEST_WORKER") {
	case "":
		os.Exit(m.Run())
	case "echo":
		err := Serve(os.Stdin, os.Stdout, func(req []byte) []byte {
			switch s := string(req); {
			case s == "crash":
				os.Exit(7)
			case s == "stall":
				time.Sleep(time.Hour)
			}
			return append([]byte("echo:"), req...)
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		os.Exit(0)
	case "garbage":
		fmt.Println("usage: this is not a protocol worker, it prints a banner")
		os.Exit(0)
	default:
		fmt.Fprintln(os.Stderr, "unknown worker mode")
		os.Exit(2)
	}
}

func startEcho(t *testing.T, watchdog time.Duration) *Client {
	t.Helper()
	c, err := Start(Config{
		Command:  []string{testBinary(t)},
		Env:      []string{"PROCEXEC_TEST_WORKER=echo"},
		Watchdog: watchdog,
	})
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	return c
}

// testBinary returns the running test binary's path (the worker command).
func testBinary(t *testing.T) string {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatalf("os.Executable: %v", err)
	}
	return exe
}

func TestEchoRoundTrip(t *testing.T) {
	c := startEcho(t, 5*time.Second)
	defer c.Close()
	for i := 0; i < 10; i++ {
		msg := fmt.Sprintf("request-%d", i)
		resp, err := c.Call([]byte(msg))
		if err != nil {
			t.Fatalf("Call %d: %v", i, err)
		}
		if string(resp) != "echo:"+msg {
			t.Fatalf("Call %d: got %q", i, resp)
		}
	}
	if c.Pid() == 0 {
		t.Fatal("worker has no pid")
	}
}

func TestWatchdogKillsStalledWorker(t *testing.T) {
	c := startEcho(t, 300*time.Millisecond)
	defer c.Close()
	start := time.Now()
	_, err := c.Call([]byte("stall"))
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("want ErrWatchdog, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("watchdog took %s to fire", elapsed)
	}
	// The client is poisoned: further calls fail fast instead of writing
	// into a dead pipe.
	if _, err := c.Call([]byte("after")); !errors.Is(err, ErrWorkerDied) {
		t.Fatalf("poisoned client accepted a call: %v", err)
	}
}

func TestWorkerCrashMidCall(t *testing.T) {
	c := startEcho(t, 5*time.Second)
	defer c.Close()
	if _, err := c.Call([]byte("crash")); !errors.Is(err, ErrWorkerDied) {
		t.Fatalf("want ErrWorkerDied, got %v", err)
	}
}

func TestHandshakeRejectsNonWorker(t *testing.T) {
	_, err := Start(Config{
		Command:  []string{testBinary(t)},
		Env:      []string{"PROCEXEC_TEST_WORKER=garbage"},
		Watchdog: 5 * time.Second,
	})
	if err == nil {
		t.Fatal("Start accepted a banner-printing non-worker")
	}
}

func TestSpawnFailureIsImmediate(t *testing.T) {
	_, err := Start(Config{Command: []string{"/nonexistent/worker/binary"}})
	if err == nil {
		t.Fatal("Start accepted a nonexistent binary")
	}
}

func TestCleanClose(t *testing.T) {
	c := startEcho(t, 5*time.Second)
	if _, err := c.Call([]byte("x")); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := c.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

func TestFrameRoundTripAndCorruption(t *testing.T) {
	payloads := [][]byte{{}, []byte("a"), bytes.Repeat([]byte("xyz"), 1000)}
	var buf bytes.Buffer
	for _, p := range payloads {
		if err := WriteFrame(&buf, p); err != nil {
			t.Fatalf("WriteFrame: %v", err)
		}
	}
	raw := buf.Bytes()
	r := bytes.NewReader(raw)
	for i, p := range payloads {
		got, err := ReadFrame(r)
		if err != nil {
			t.Fatalf("ReadFrame %d: %v", i, err)
		}
		if !bytes.Equal(got, p) {
			t.Fatalf("frame %d mismatch", i)
		}
	}
	if _, err := ReadFrame(r); err != io.EOF {
		t.Fatalf("want clean EOF at stream end, got %v", err)
	}

	// Any single flipped byte must surface as corruption or a short read,
	// never as a silently different payload.
	for off := 0; off < len(raw); off++ {
		mut := append([]byte(nil), raw...)
		mut[off] ^= 0x5A
		r := bytes.NewReader(mut)
		for i := 0; ; i++ {
			got, err := ReadFrame(r)
			if err != nil {
				break // detected: corrupt frame, unexpected EOF, or clean EOF after damage consumed a trailing frame
			}
			if i < len(payloads) && !bytes.Equal(got, payloads[i]) {
				t.Fatalf("flip %d: frame %d silently corrupted", off, i)
			}
			if i >= len(payloads) {
				t.Fatalf("flip %d: phantom extra frame decoded", off)
			}
		}
	}
}

func TestTruncatedStreamIsUnexpectedEOF(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("hello world")); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 1; cut < len(raw); cut++ {
		_, err := ReadFrame(bytes.NewReader(raw[:cut]))
		if err == nil {
			t.Fatalf("cut %d: truncated frame decoded successfully", cut)
		}
		if err == io.EOF {
			t.Fatalf("cut %d: mid-frame truncation reported as clean EOF", cut)
		}
	}
}
