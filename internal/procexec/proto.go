// Package procexec shells work out to child processes over a
// length-prefixed stdin/stdout protocol, with a hard watchdog that
// SIGKILLs hung or runaway children. It is the isolation substrate under
// the harness's `pybench -worker` re-exec mode: an invocation that
// segfaults, deadlocks outside the VM, or spins in native code takes down
// only its child process — the one failure class the in-VM AbortCheck
// budgets cannot catch — while the supervisor stays up and accounts for
// the loss.
//
// The package is deliberately generic: frames carry opaque bytes, and the
// request/response schema belongs to the caller (internal/harness defines
// the invocation protocol). Framing is the same discipline as the
// internal/wal journal — 4-byte big-endian length plus CRC32C — so a
// truncated or garbled pipe is detected, never misparsed.
package procexec

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

// MaxFrameSize bounds one frame's payload; a decoded length above it is a
// protocol violation (or stream corruption) and kills the connection.
const MaxFrameSize = 1 << 26

const frameHeaderSize = 8

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrFrameCorrupt reports a CRC mismatch or bogus length on the pipe.
var ErrFrameCorrupt = errors.New("procexec: corrupt frame")

// WriteFrame writes one length-prefixed, checksummed frame. The header and
// payload go out in a single Write so a well-behaved pipe never interleaves
// partial frames.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > MaxFrameSize {
		return fmt.Errorf("procexec: frame of %d bytes exceeds MaxFrameSize", len(payload))
	}
	buf := make([]byte, frameHeaderSize+len(payload))
	binary.BigEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(buf[4:8], crc32.Checksum(payload, castagnoli))
	copy(buf[frameHeaderSize:], payload)
	_, err := w.Write(buf)
	return err
}

// ReadFrame reads one frame. io.EOF at a frame boundary is returned as-is
// (clean shutdown); EOF inside a frame becomes io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [frameHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, err // clean EOF before any header byte
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: length %d exceeds limit", ErrFrameCorrupt, n)
	}
	want := binary.BigEndian.Uint32(hdr[4:8])
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if errors.Is(err, io.EOF) {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if crc32.Checksum(payload, castagnoli) != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrFrameCorrupt)
	}
	return payload, nil
}
