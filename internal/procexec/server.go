package procexec

import (
	"fmt"
	"io"
	"os"
)

// helloPayload is the first frame a worker sends: a fixed magic plus the
// protocol version. The supervisor refuses to talk to anything else, so a
// misconfigured command (one that prints a usage banner, say) degrades
// cleanly instead of being misparsed as results.
func helloPayload() []byte {
	return []byte(fmt.Sprintf("procexec/1 pid=%d", os.Getpid()))
}

// helloPrefix is the part of the handshake the client verifies.
const helloPrefix = "procexec/1 "

// Serve runs the worker side of the protocol: it sends the handshake, then
// answers request frames with handle's response until the supervisor
// closes stdin (clean EOF → nil). handle must not panic; a handler that
// needs crash semantics should encode them in its response payload.
func Serve(r io.Reader, w io.Writer, handle func(req []byte) []byte) error {
	if err := WriteFrame(w, helloPayload()); err != nil {
		return fmt.Errorf("procexec: handshake: %w", err)
	}
	for {
		req, err := ReadFrame(r)
		if err != nil {
			if err == io.EOF {
				return nil
			}
			return fmt.Errorf("procexec: reading request: %w", err)
		}
		if err := WriteFrame(w, handle(req)); err != nil {
			return fmt.Errorf("procexec: writing response: %w", err)
		}
	}
}
