package procexec

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"sync"
	"time"
)

// Sentinel failures the caller's retry policy distinguishes.
var (
	// ErrWatchdog means the child blew its per-call deadline and was
	// SIGKILLed — the hung-worker case no in-process budget can catch.
	ErrWatchdog = errors.New("procexec: watchdog deadline exceeded; worker killed")
	// ErrWorkerDied means the child exited or broke the pipe mid-call
	// (crash, kill -9, or protocol violation).
	ErrWorkerDied = errors.New("procexec: worker died mid-call")
)

// Config describes how to spawn and police one worker child.
type Config struct {
	// Command is the child's argv (Command[0] is the binary). The harness
	// passes the re-exec form: [os.Executable(), "-worker"].
	Command []string
	// Env entries are appended to the parent environment.
	Env []string
	// Watchdog is the per-call deadline after which the child is
	// SIGKILLed. Defaults to 30s.
	Watchdog time.Duration
}

func (c Config) withDefaults() Config {
	if c.Watchdog <= 0 {
		c.Watchdog = 30 * time.Second
	}
	return c
}

// Client owns one worker child process and issues one call at a time over
// its stdin/stdout pair. It is not safe for concurrent Calls — the harness
// gives each shard its own Client. After any error from Call the client is
// dead: the caller replaces it (Respawn) rather than resuming a stream
// whose framing can no longer be trusted.
type Client struct {
	cfg    Config
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	stdout *bufio.Reader
	stderr *tailBuffer
	dead   bool
}

// Start spawns the child and performs the handshake. On handshake failure
// the child is killed and an error describing what it printed is returned,
// so pointing the config at a non-worker binary fails loudly and fast.
func Start(cfg Config) (*Client, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Command) == 0 {
		return nil, errors.New("procexec: empty worker command")
	}
	cmd := exec.Command(cfg.Command[0], cfg.Command[1:]...)
	cmd.Env = append(os.Environ(), cfg.Env...)
	stderr := &tailBuffer{limit: 4096}
	cmd.Stderr = stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("procexec: stdin pipe: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("procexec: stdout pipe: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("procexec: spawning %s: %w", cfg.Command[0], err)
	}
	c := &Client{cfg: cfg, cmd: cmd, stdin: stdin,
		stdout: bufio.NewReader(stdout), stderr: stderr}
	hello, err := c.readWithWatchdog()
	if err != nil {
		c.kill()
		return nil, fmt.Errorf("procexec: handshake with %s failed: %w%s",
			cfg.Command[0], err, c.stderrSuffix())
	}
	if !strings.HasPrefix(string(hello), helloPrefix) {
		c.kill()
		return nil, fmt.Errorf("procexec: %s is not a worker (sent %q)%s",
			cfg.Command[0], truncate(string(hello), 64), c.stderrSuffix())
	}
	return c, nil
}

// Pid returns the child's process id (0 when not running).
func (c *Client) Pid() int {
	if c.cmd == nil || c.cmd.Process == nil {
		return 0
	}
	return c.cmd.Process.Pid
}

// Call sends one request and waits for its response under the watchdog.
// Any failure kills the child and poisons the client.
func (c *Client) Call(req []byte) ([]byte, error) {
	if c.dead {
		return nil, fmt.Errorf("%w (client already poisoned)", ErrWorkerDied)
	}
	if err := WriteFrame(c.stdin, req); err != nil {
		c.kill()
		return nil, fmt.Errorf("%w: sending request: %v%s", ErrWorkerDied, err, c.stderrSuffix())
	}
	resp, err := c.readWithWatchdog()
	if err != nil {
		poison := ErrWorkerDied
		if errors.Is(err, ErrWatchdog) {
			poison = ErrWatchdog
		}
		c.kill()
		return nil, fmt.Errorf("%w: %v%s", poison, err, c.stderrSuffix())
	}
	return resp, nil
}

// readWithWatchdog reads one frame, SIGKILLing the child if it takes
// longer than the configured deadline.
func (c *Client) readWithWatchdog() ([]byte, error) {
	type result struct {
		payload []byte
		err     error
	}
	ch := make(chan result, 1)
	go func() {
		p, err := ReadFrame(c.stdout)
		ch <- result{p, err}
	}()
	timer := time.NewTimer(c.cfg.Watchdog)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.payload, r.err
	case <-timer.C:
		// SIGKILL closes the pipe, which unblocks the reader goroutine.
		if c.cmd.Process != nil {
			c.cmd.Process.Kill()
		}
		<-ch
		return nil, ErrWatchdog
	}
}

// kill SIGKILLs the child and reaps it. Safe to call repeatedly.
func (c *Client) kill() {
	if c.dead {
		return
	}
	c.dead = true
	if c.cmd.Process != nil {
		c.cmd.Process.Kill()
	}
	//benchlint:allow uncheckederr — forced kill; the pipe is already dead
	c.stdin.Close()
	c.cmd.Wait()
}

// Close shuts the worker down cleanly: closing stdin makes Serve exit on
// EOF. A child that ignores the close is reaped by SIGKILL after the
// watchdog interval.
func (c *Client) Close() error {
	if c.dead {
		return nil
	}
	c.dead = true
	//benchlint:allow uncheckederr — EOF signal; the watchdog handles a stuck child
	c.stdin.Close()
	done := make(chan error, 1)
	go func() { done <- c.cmd.Wait() }()
	timer := time.NewTimer(c.cfg.Watchdog)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		if c.cmd.Process != nil {
			c.cmd.Process.Kill()
		}
		return <-done
	}
}

// stderrSuffix renders the child's captured stderr tail for error
// messages ("" when the child printed nothing).
func (c *Client) stderrSuffix() string {
	s := strings.TrimSpace(c.stderr.String())
	if s == "" {
		return ""
	}
	return "; worker stderr: " + truncate(s, 512)
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n] + "..."
}

// tailBuffer keeps the last limit bytes written to it — enough stderr for
// a diagnostic without letting a chatty child grow memory unboundedly.
type tailBuffer struct {
	mu    sync.Mutex
	limit int
	buf   []byte
}

func (t *tailBuffer) Write(p []byte) (int, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.buf = append(t.buf, p...)
	if len(t.buf) > t.limit {
		t.buf = t.buf[len(t.buf)-t.limit:]
	}
	return len(p), nil
}

func (t *tailBuffer) String() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return string(t.buf)
}
