package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"strings"
)

// Finding is a single methodology-invariant violation in the Go tree.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Rule, f.Msg)
}

// Directive comments recognized by the linter:
//
//	//benchlint:allow clock   — sanctions a wall-clock call on the same or
//	                            the following source line
//	//benchlint:allow uncheckederr — sanctions a dropped error return on the
//	                            same or the following source line (deliberate
//	                            drops on already-failing cleanup paths)
//	benchlint:hotpath         — in a function's doc comment, marks it as
//	                            part of the interpreter dispatch loop, where
//	                            allocation-prone stdlib calls are forbidden
//	benchlint:allow boxedhot  — in a hot-path function's doc comment,
//	                            sanctions interface-typed minipy.Value in its
//	                            signature (a genuine escape point: the boxing
//	                            converters themselves, generic fallbacks on
//	                            already-boxed operands, the stack tier's
//	                            boxed frame contract)
const (
	allowClockDirective     = "benchlint:allow clock"
	allowUncheckedDirective = "benchlint:allow uncheckederr"
	allowBoxedhotDirective  = "benchlint:allow boxedhot"
	hotpathDirective        = "benchlint:hotpath"
)

// minipyValuePath is the import path of the boxed value package. A
// hot-path function whose signature traffics in this interface type forces
// its callers to box tagged words; the boxedhot rule keeps the tagged
// representation from silently leaking back into boxed form.
const minipyValuePath = "repro/internal/minipy"

// hotpathForbidden are packages whose direct calls inside a hot-path
// function distort measurement: fmt and log allocate and acquire locks,
// os and time issue syscalls, math/rand takes a global lock. A hot-path
// function that needs one of these is a methodology bug, not a lint gap.
var hotpathForbidden = map[string]bool{
	"fmt":       true,
	"log":       true,
	"os":        true,
	"time":      true,
	"math/rand": true,
}

// lintFile parses one Go source file and applies every rule. The linter is
// purely syntactic (go/ast, no type checker): it resolves package
// references through the file's import table, which is exact for the
// qualified-call patterns the rules target.
func lintFile(fset *token.FileSet, path string, src []byte) ([]Finding, error) {
	file, err := parser.ParseFile(fset, path, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	l := &linter{
		fset:           fset,
		imports:        importTable(file),
		allowed:        directiveLines(fset, file, allowClockDirective),
		allowUnchecked: directiveLines(fset, file, allowUncheckedDirective),
	}
	l.file(file)
	return l.findings, nil
}

type linter struct {
	fset           *token.FileSet
	imports        map[string]string // local identifier -> import path
	allowed        map[int]bool      // lines sanctioned by benchlint:allow clock
	allowUnchecked map[int]bool      // lines sanctioned by benchlint:allow uncheckederr
	findings       []Finding
}

func (l *linter) report(pos token.Pos, rule, format string, args ...interface{}) {
	l.findings = append(l.findings, Finding{
		Pos:  l.fset.Position(pos),
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// importTable maps each file-local package identifier to its import path.
// Unnamed imports use the final path element (import "math/rand" binds
// "rand"); dot and blank imports are ignored — neither produces the
// qualified selector calls the rules match.
func importTable(file *ast.File) map[string]string {
	t := make(map[string]string)
	for _, imp := range file.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := path
		if i := strings.LastIndexByte(path, '/'); i >= 0 {
			name = path[i+1:]
		}
		if imp.Name != nil {
			name = imp.Name.Name
			if name == "." || name == "_" {
				continue
			}
		}
		t[name] = path
	}
	return t
}

// directiveLines collects the source lines sanctioned by an allow
// directive. A directive covers its own line (trailing comment) and the
// line after it (comment above the call).
func directiveLines(fset *token.FileSet, file *ast.File, directive string) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.Contains(c.Text, directive) {
				continue
			}
			line := fset.Position(c.End()).Line
			lines[line] = true
			lines[line+1] = true
		}
	}
	return lines
}

func (l *linter) file(file *ast.File) {
	// Rule wallclock + globalrand apply file-wide.
	ast.Inspect(file, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			pkg, fn, ok := l.qualifiedCall(node)
			if !ok {
				return true
			}
			l.checkWallclock(node, pkg, fn)
			l.checkGlobalRand(node, pkg, fn)
		case *ast.ExprStmt:
			if call, ok := node.X.(*ast.CallExpr); ok {
				l.checkUncheckedErr(call, false)
			}
		case *ast.DeferStmt:
			l.checkUncheckedErr(node.Call, true)
		}
		return true
	})

	// Rule hotpath applies inside functions whose doc comment carries the
	// marker, including any function literals they contain.
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Doc == nil || fd.Body == nil {
			continue
		}
		doc := fd.Doc.Text()
		if !strings.Contains(doc, hotpathDirective) {
			continue
		}
		l.checkHotpath(fd.Name.Name, fd.Body)
		if !strings.Contains(doc, allowBoxedhotDirective) {
			l.checkBoxedhot(fd)
		}
	}
}

// qualifiedCall matches pkg.Fn(...) where pkg is an identifier bound by an
// import, and returns the import path and function name.
func (l *linter) qualifiedCall(call *ast.CallExpr) (pkg, fn string, ok bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", "", false
	}
	// A local variable shadowing an import name is indistinguishable
	// syntactically; Obj != nil means the parser resolved the identifier to
	// a local declaration, so it is not a package reference.
	if id.Obj != nil {
		return "", "", false
	}
	path, ok := l.imports[id.Name]
	if !ok {
		return "", "", false
	}
	return path, sel.Sel.Name, true
}

// checkWallclock enforces the sanctioned-clock invariant: every wall-clock
// read must be an annotated, deliberate site. Unannotated time.Now calls
// scattered through the harness are how accidental timer misuse (mixed
// clocks, per-iteration syscalls) creeps into measurements.
func (l *linter) checkWallclock(call *ast.CallExpr, pkg, fn string) {
	if pkg != "time" {
		return
	}
	switch fn {
	case "Now", "Since", "Until":
	default:
		return
	}
	if l.allowed[l.fset.Position(call.Pos()).Line] {
		return
	}
	l.report(call.Pos(), "wallclock",
		"time.%s outside a sanctioned clock site (annotate with //%s if deliberate)",
		fn, allowClockDirective)
}

// checkGlobalRand forbids the process-global math/rand source: it is
// seeded implicitly, shared across goroutines behind a lock, and makes
// runs irreproducible. Constructing an explicit source (rand.New,
// rand.NewSource, rand.NewZipf) is fine, as are methods on the resulting
// *rand.Rand — those are calls on a variable, not on the package.
func (l *linter) checkGlobalRand(call *ast.CallExpr, pkg, fn string) {
	if pkg != "math/rand" && pkg != "math/rand/v2" {
		return
	}
	switch fn {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return
	}
	l.report(call.Pos(), "globalrand",
		"%s.%s uses the global rand source; construct an explicit seeded source instead",
		pkg, fn)
}

// uncheckedOSFuncs are the os package's write-path functions: each returns
// only an error, so calling one in statement position silently swallows
// the failure — a journal rotation that didn't happen, a result file that
// was never renamed into place.
var uncheckedOSFuncs = map[string]bool{
	"Remove": true, "RemoveAll": true, "Rename": true, "Mkdir": true,
	"MkdirAll": true, "WriteFile": true, "Chmod": true, "Truncate": true,
	"Setenv": true, "Unsetenv": true,
}

// uncheckedMethods are the method names of the repository's durable-write
// surface — the WAL journals (Append/Rotate/Close), the perfstore
// (Append/Close), and buffered writers (Flush/Sync) — plus Close itself,
// whose error is the only place a deferred final write can fail. The match
// is syntactic (any receiver), which is exactly the point: every dropped
// error on a name in this set deserves either handling or an explicit
// //benchlint:allow uncheckederr with a reason.
var uncheckedMethods = map[string]bool{
	"Append": true, "Rotate": true, "Close": true, "Sync": true, "Flush": true,
}

// checkUncheckedErr enforces the durable-write invariant: error returns
// from WAL/perfstore/os write paths may not be dropped. A statement-
// position call of a listed os function or write-surface method — bare or
// deferred — is flagged unless the line carries the allow directive.
// Checked calls (`if err := j.Append(...)`) never match: the rule only
// sees calls whose entire statement is the call itself.
func (l *linter) checkUncheckedErr(call *ast.CallExpr, deferred bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if pkg, fn, ok := l.qualifiedCall(call); ok {
		if pkg != "os" || !uncheckedOSFuncs[fn] {
			return
		}
	} else if !uncheckedMethods[name] {
		return
	}
	if l.allowUnchecked[l.fset.Position(call.Pos()).Line] {
		return
	}
	how := "call"
	if deferred {
		how = "deferred call"
	}
	l.report(call.Pos(), "uncheckederr",
		"%s of %s drops its error return (handle it, or annotate //%s with the reason)",
		how, name, allowUncheckedDirective)
}

// checkBoxedhot flags plain minipy.Value parameters and results on a
// hot-path function's signature. The register tier keeps small values as
// tagged words (rslot); an interface-typed Value in a hot-path signature
// forces every call to box — exactly the allocation the tier exists to
// avoid. The match is the bare selector type only: a []minipy.Value frame
// slice or *minipy.List receiver is a container of already-boxed values,
// not a boxing site. Genuine escape points (the boxing converters, the
// generic fallback on boxed operands, the stack tier's frame contract)
// carry benchlint:allow boxedhot in their doc comment with the reason.
func (l *linter) checkBoxedhot(fd *ast.FuncDecl) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			sel, ok := field.Type.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Value" {
				continue
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || id.Obj != nil || l.imports[id.Name] != minipyValuePath {
				continue
			}
			l.report(field.Type.Pos(), "boxedhot",
				"hot-path function %s has an interface-typed minipy.Value %s; pass a tagged word, or annotate the doc comment with %s and the reason",
				fd.Name.Name, what, allowBoxedhotDirective)
		}
	}
	check(fd.Type.Params, "parameter")
	check(fd.Type.Results, "result")
}

// checkHotpath walks the body of a benchlint:hotpath function and flags
// calls into packages that allocate, lock, or syscall, plus fresh map
// allocations — make(map[...]) and map composite literals. A map allocated
// per dispatch hits the runtime allocator and defeats the register
// allocation the loop depends on; indexing an existing map is fine, and
// cold map-building code belongs in an unmarked helper (see the vm's
// buildClass, extracted from the dispatch loop for exactly this reason).
func (l *linter) checkHotpath(name string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if id, ok := node.Fun.(*ast.Ident); ok && id.Name == "make" && id.Obj == nil {
				if len(node.Args) > 0 {
					if _, isMap := node.Args[0].(*ast.MapType); isMap {
						l.report(node.Pos(), "hotpathmap",
							"make(map) inside hot-path function %s (allocates in the dispatch loop; hoist or extract to a cold helper)",
							name)
						return true
					}
				}
			}
			pkg, fn, ok := l.qualifiedCall(node)
			if !ok || !hotpathForbidden[pkg] {
				return true
			}
			l.report(node.Pos(), "hotpath",
				"%s.%s inside hot-path function %s (allocates/locks/syscalls in the dispatch loop)",
				pkg, fn, name)
		case *ast.CompositeLit:
			if _, isMap := node.Type.(*ast.MapType); isMap {
				l.report(node.Pos(), "hotpathmap",
					"map literal inside hot-path function %s (allocates in the dispatch loop; hoist or extract to a cold helper)",
					name)
			}
		}
		return true
	})
}
