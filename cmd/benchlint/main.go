// Command benchlint is a repository-local vet pass that enforces the
// measurement-methodology invariants the harness depends on. It is built
// on go/ast alone (no external analysis frameworks) and checks five
// rules across the Go tree:
//
//   - wallclock: time.Now / time.Since / time.Until may appear only at
//     sanctioned clock sites annotated //benchlint:allow clock. Stray
//     wall-clock reads are how mixed clock domains and per-iteration
//     syscalls contaminate timing data.
//   - hotpath: functions whose doc comment contains benchlint:hotpath
//     (the interpreter dispatch loop and its helpers) must not call into
//     fmt, log, os, time, or math/rand — all of which allocate, lock, or
//     syscall and would perturb the very code being measured.
//   - boxedhot: hot-path functions (the same benchlint:hotpath marker)
//     must not take or return a bare interface-typed minipy.Value where a
//     tagged word suffices — every such signature forces callers to box,
//     which is exactly the allocation the register tier exists to avoid.
//     Containers of boxed values ([]minipy.Value) are fine; genuine escape
//     points carry benchlint:allow boxedhot in the doc comment.
//   - globalrand: the process-global math/rand source is forbidden
//     everywhere; randomness must flow from explicitly seeded sources so
//     experiments replay bit-identically.
//   - uncheckederr: statement-position calls that drop error returns from
//     the durable-write surface — os write-path functions (Remove, Rename,
//     WriteFile, ...) and WAL/perfstore methods (Append, Rotate, Close,
//     Sync, Flush), bare or deferred — must handle the error or carry
//     //benchlint:allow uncheckederr with a reason. A campaign journal
//     whose rotation failed silently is how crash recovery loses data.
//
// Usage:
//
//	benchlint ./cmd ./internal ./examples
//
// Arguments are files or directories (walked recursively; testdata and
// hidden directories and _test.go files are skipped). Exit status follows
// the repository taxonomy: 1 if any finding is reported, 2 on usage
// errors, 3 when a file cannot be read or parsed.
package main

import (
	"fmt"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/exitcode"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: benchlint <file-or-dir> ...")
		os.Exit(exitcode.Usage)
	}
	fset := token.NewFileSet()
	var all []Finding
	for _, arg := range os.Args[1:] {
		files, err := collectGoFiles(arg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchlint: %v\n", err)
			os.Exit(exitcode.Infra)
		}
		for _, path := range files {
			src, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchlint: %v\n", err)
				os.Exit(exitcode.Infra)
			}
			fs, err := lintFile(fset, path, src)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchlint: %v\n", err)
				os.Exit(exitcode.Infra)
			}
			all = append(all, fs...)
		}
	}
	for _, f := range all {
		fmt.Println(f)
	}
	if len(all) > 0 {
		fmt.Fprintf(os.Stderr, "benchlint: %d finding(s)\n", len(all))
		os.Exit(exitcode.Finding)
	}
}

// collectGoFiles expands an argument into the list of Go files to lint.
// Test files are exempt (tests may time themselves freely), as is
// anything under a testdata or hidden directory — fixtures include
// deliberate violations.
func collectGoFiles(arg string) ([]string, error) {
	info, err := os.Stat(arg)
	if err != nil {
		return nil, err
	}
	if !info.IsDir() {
		return []string{arg}, nil
	}
	var files []string
	err = filepath.WalkDir(arg, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == "testdata" || (strings.HasPrefix(name, ".") && path != arg) {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		files = append(files, path)
		return nil
	})
	return files, err
}
