// Package clean contains idiomatic uses that benchlint must accept
// without findings: monotonic clock sites annotated as sanctioned,
// explicitly seeded rand sources, and a hot-path loop free of
// allocation-prone calls.
package clean

import (
	"math/rand"
	"os"
	"time"

	"repro/internal/minipy"
)

// Clock is the sanctioned wall-clock site for this package.
func Clock() time.Time {
	return time.Now() //benchlint:allow clock
}

// Elapsed measures against an explicit start via the sanctioned helper.
func Elapsed(start time.Time) time.Duration {
	//benchlint:allow clock
	return time.Since(start)
}

// NewJitter builds a reproducible perturbation stream from a caller seed.
// Methods on an explicit *rand.Rand are fine; only the global source is
// forbidden.
func NewJitter(seed int64) func() int64 {
	r := rand.New(rand.NewSource(seed))
	return func() int64 { return r.Int63n(1000) }
}

// dispatch is a hot-path loop that stays inside the rules: pure
// arithmetic, no stdlib calls.
// benchlint:hotpath
func dispatch(ops []int) int {
	acc := 0
	for _, op := range ops {
		acc = acc*31 + op
	}
	return acc
}

// dispatchCounted reads and writes an existing map inside the loop. Map
// indexing and index assignment are fine on the hot path — only allocating
// a fresh map (make or a composite literal) is flagged.
// benchlint:hotpath
func dispatchCounted(ops []int, counts map[int]int) int {
	acc := 0
	for _, op := range ops {
		counts[op]++
		acc += counts[op]
	}
	return acc
}

// timeTable shadows the time package name with a local; calls through it
// must not be mistaken for clock reads.
func timeTable() int {
	time := []int{1, 2, 3}
	return len(time)
}

// persist handles every durable-write error: checked calls, an annotated
// deliberate drop, and a local method named like a write op (Flush on a
// local variable is still flagged-by-name, so it carries the directive).
func persist(j interface {
	Append([]byte) error
	Close() error
}) error {
	if err := j.Append(nil); err != nil {
		return err
	}
	if err := os.Remove("stale.json"); err != nil {
		return err
	}
	//benchlint:allow uncheckederr — cleanup; the append error wins
	defer j.Close()
	return nil
}

// loadSlot reads an already-boxed value out of a frame slice. Containers
// of boxed values ([]minipy.Value) are fine on the hot path — only a bare
// minipy.Value in the signature is a boxing site.
// benchlint:hotpath
func loadSlot(frame []minipy.Value, i int) []minipy.Value {
	return frame[i : i+1]
}

// box converts a tagged word back to the boxed representation: the
// sanctioned escape point at the tier boundary.
// benchlint:hotpath
// benchlint:allow boxedhot — this is the boxing converter itself
func box(tag int, num int64) minipy.Value {
	_ = tag
	_ = num
	var v minipy.Value
	return v
}
