// Package violating seeds one violation of every benchlint rule; the unit
// tests assert each is caught at the expected position.
package violating

import (
	"fmt"
	"math/rand"
	"os"
	"time"

	"repro/internal/minipy"
)

// MeasureOnce times a single body execution. The bare time.Now calls here
// are the canonical methodology bug benchlint exists to catch: an
// unsanctioned wall-clock read directly on the measurement path.
func MeasureOnce(body func()) time.Duration {
	start := time.Now() // violation: wallclock
	body()
	return time.Since(start) // violation: wallclock
}

// Jitter perturbs a schedule using the process-global rand source, which
// is implicitly seeded and irreproducible.
func Jitter(d time.Duration) time.Duration {
	return d + time.Duration(rand.Int63n(1000)) // violation: globalrand
}

// dispatch is the simulated inner interpreter loop.
// benchlint:hotpath
func dispatch(ops []int) int {
	acc := 0
	for _, op := range ops {
		fmt.Printf("op=%d\n", op) // violation: hotpath (and allocation!)
		acc += op
	}
	return acc
}

// dispatchCached allocates a fresh cache inside the dispatch loop — the
// per-iteration map allocation benchlint's hotpathmap rule exists to catch.
// benchlint:hotpath
func dispatchCached(ops []int) int {
	acc := 0
	for _, op := range ops {
		cache := make(map[int]int)    // violation: hotpathmap
		weights := map[int]int{op: 1} // violation: hotpathmap
		acc += cache[op] + weights[op]
	}
	return acc
}

// SanctionedStamp shows the escape hatch: an annotated clock read is a
// deliberate, reviewed site and must NOT be flagged.
func SanctionedStamp() time.Time {
	//benchlint:allow clock
	return time.Now()
}

// Persist drops error returns on the durable-write surface: a bare os
// write-path call and an unchecked journal-style Close/Append.
func Persist(j interface {
	Append([]byte) error
	Close() error
}) {
	os.Remove("stale.json") // violation: uncheckederr
	j.Append(nil)           // violation: uncheckederr
	defer j.Close()         // violation: uncheckederr
}

// boxedEval simulates a register-tier helper that traffics in boxed
// values on the hot path: both the parameter and the result force the
// caller to box tagged words.
// benchlint:hotpath
func boxedEval(op int, v minipy.Value) minipy.Value { // violation: boxedhot x2
	_ = op
	return v
}
