package main

import (
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

func lintFixture(t *testing.T, path string) []Finding {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := lintFile(token.NewFileSet(), path, src)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

// TestViolatingFixture pins every seeded violation: rule, line, and count.
// The time.Now on the measurement path of MeasureOnce is the acceptance
// case — benchlint must flag an unsanctioned wall-clock read.
func TestViolatingFixture(t *testing.T) {
	fs := lintFixture(t, filepath.Join("testdata", "violating", "violating.go"))
	want := []struct {
		rule string
		line int
	}{
		{"wallclock", 18}, // time.Now in MeasureOnce
		{"wallclock", 20}, // time.Since in MeasureOnce
		{"globalrand", 26},
		{"hotpath", 34},
		{"hotpathmap", 46},   // make(map) in dispatchCached
		{"hotpathmap", 47},   // map literal in dispatchCached
		{"uncheckederr", 66}, // bare os.Remove in Persist
		{"uncheckederr", 67}, // bare j.Append in Persist
		{"uncheckederr", 68}, // defer j.Close in Persist
		{"boxedhot", 75},     // minipy.Value parameter of boxedEval
		{"boxedhot", 75},     // minipy.Value result of boxedEval
	}
	if len(fs) != len(want) {
		t.Fatalf("got %d findings, want %d:\n%v", len(fs), len(want), fs)
	}
	seen := map[string]bool{}
	for _, f := range fs {
		seen[f.Rule] = true
		matched := false
		for _, w := range want {
			if f.Rule == w.rule && f.Pos.Line == w.line {
				matched = true
			}
		}
		if !matched {
			t.Errorf("unexpected finding %v", f)
		}
	}
	for _, r := range []string{"wallclock", "globalrand", "hotpath", "hotpathmap", "uncheckederr", "boxedhot"} {
		if !seen[r] {
			t.Errorf("rule %s produced no finding", r)
		}
	}
}

// TestCleanFixture asserts zero findings over sanctioned clock sites,
// seeded rand sources, a clean hot path, and a shadowed package name.
func TestCleanFixture(t *testing.T) {
	if fs := lintFixture(t, filepath.Join("testdata", "clean", "clean.go")); len(fs) != 0 {
		t.Errorf("clean fixture produced findings: %v", fs)
	}
}

// TestDirectiveScope verifies the allow-clock directive covers exactly
// its own line and the next one — not the whole function.
func TestDirectiveScope(t *testing.T) {
	src := []byte(`package p

import "time"

func f() time.Duration {
	//benchlint:allow clock
	a := time.Now()
	b := time.Now()
	return b.Sub(a)
}
`)
	fs, err := lintFile(token.NewFileSet(), "scope.go", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 {
		t.Fatalf("got %d findings, want exactly 1 (second time.Now): %v", len(fs), fs)
	}
	if fs[0].Rule != "wallclock" || fs[0].Pos.Line != 8 {
		t.Errorf("wrong finding: %v", fs[0])
	}
}

// TestHotpathCoversFuncLits ensures calls inside function literals nested
// in a marked function are still flagged.
func TestHotpathCoversFuncLits(t *testing.T) {
	src := []byte(`package p

import "fmt"

// run is the loop.
// benchlint:hotpath
func run(n int) {
	f := func() { fmt.Println(n) }
	f()
}
`)
	fs, err := lintFile(token.NewFileSet(), "lit.go", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 1 || fs[0].Rule != "hotpath" {
		t.Fatalf("want one hotpath finding, got %v", fs)
	}
}

// TestRenamedImport confirms rules follow import aliases rather than
// surface identifier names.
func TestRenamedImport(t *testing.T) {
	src := []byte(`package p

import (
	clock "time"
	mrand "math/rand"
)

func f() int64 {
	_ = clock.Now()
	return mrand.Int63()
}
`)
	fs, err := lintFile(token.NewFileSet(), "alias.go", src)
	if err != nil {
		t.Fatal(err)
	}
	rules := map[string]int{}
	for _, f := range fs {
		rules[f.Rule]++
	}
	if rules["wallclock"] != 1 || rules["globalrand"] != 1 {
		t.Errorf("aliased imports not resolved: %v", fs)
	}
}

// TestCollectSkipsTestdataAndTests pins the walker's exemptions: fixture
// trees and _test.go files are never linted during a directory sweep.
func TestCollectSkipsTestdataAndTests(t *testing.T) {
	files, err := collectGoFiles(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range files {
		if filepath.Base(f) == "violating.go" || filepath.Base(f) == "clean.go" {
			t.Errorf("walker descended into testdata: %s", f)
		}
		if len(f) > 8 && f[len(f)-8:] == "_test.go" {
			t.Errorf("walker collected test file: %s", f)
		}
	}
	if len(files) != 2 { // main.go + rules.go
		t.Errorf("expected exactly main.go and rules.go, got %v", files)
	}
}
