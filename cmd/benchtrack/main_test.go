package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/harness"
	"repro/internal/perfstore"
	"repro/internal/trace"
	"repro/internal/vm"
	"repro/internal/wal"
)

func commitAt(i int) string {
	return strings.Repeat("0", 30) + "c0ffee" + string(rune('a'+i)) + "xyz"
}

// fixtureHistory writes a history whose fib/interp series runs at 1.0 for
// seven commits and then regresses 20% for five more — the known injected
// regression of the acceptance scenario.
func fixtureHistory(t *testing.T, path string) (regressFrom, regressTo string) {
	t.Helper()
	store, err := perfstore.Open(wal.OSFS{}, path)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	values := []float64{1.00, 1.01, 0.99, 1.00, 1.00, 1.01, 0.99,
		1.20, 1.21, 1.19, 1.20, 1.20}
	for i, v := range values {
		rec := perfstore.Record{
			Kind:   perfstore.KindRun,
			Commit: commitAt(i),
			Branch: "main",
			Time:   time.Date(2026, 7, 1, 0, 0, 0, 0, time.UTC).AddDate(0, 0, i),
			Source: perfstore.SourcePybench,
			Host:   perfstore.Simulated,
			Points: []perfstore.Point{{Benchmark: "fib/interp", Value: v, Unit: "s/iter"}},
		}
		if err := store.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	return commitAt(6), commitAt(7)
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// The acceptance scenario: a known injected 20% regression must be
// localized to the correct commit range, raise a fresh alert (exit 1),
// fall silent after ack (exit 0), and the history must survive a torn-tail
// truncation.
func TestInjectedRegressionLifecycle(t *testing.T) {
	hist := filepath.Join(t.TempDir(), "hist.jsonl")
	from, to := fixtureHistory(t, hist)

	// 1. Fresh alert: exit 1, attributed to (from, to].
	code, out, errOut := runCLI(t, "report", "-history", hist)
	if code != 1 {
		t.Fatalf("report on regressed history: exit %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out, errOut)
	}
	wantRange := from[:12] + ".." + to[:12]
	if !strings.Contains(out, wantRange) {
		t.Fatalf("report does not attribute the regression to %s:\n%s", wantRange, out)
	}
	if !strings.Contains(errOut, "fresh unacknowledged regression") {
		t.Fatalf("stderr does not explain the failure: %q", errOut)
	}

	// 2. The JSON report carries the same finding, machine-readably.
	code, jsonOut, _ := runCLI(t, "report", "-history", hist, "-json")
	if code != 1 {
		t.Fatalf("json report: exit %d, want 1", code)
	}
	var rep perfstore.TrendReport
	if err := json.Unmarshal([]byte(jsonOut), &rep); err != nil {
		t.Fatalf("report -json is not valid JSON: %v", err)
	}
	if rep.FreshRegressions != 1 || len(rep.Changepoints) != 1 {
		t.Fatalf("json report findings: %+v", rep)
	}
	cp := rep.Changepoints[0]
	if cp.Index != 7 || cp.FromCommit != from || cp.ToCommit != to || !cp.Regression {
		t.Fatalf("changepoint misattributed: %+v", cp)
	}

	// 3. Ack the alert; the report must now pass.
	code, out, errOut = runCLI(t, "ack", "-history", hist, "-note", "accepted for feature X", cp.ID)
	if code != 0 {
		t.Fatalf("ack: exit %d\n%s\n%s", code, out, errOut)
	}
	code, out, _ = runCLI(t, "report", "-history", hist)
	if code != 0 {
		t.Fatalf("report after ack: exit %d, want 0\n%s", code, out)
	}
	if !strings.Contains(out, "acked: accepted for feature X") {
		t.Fatalf("report does not show the ack note:\n%s", out)
	}

	// 4. Torn-tail truncation: chop bytes off the final record; the store
	// must recover the intact prefix and the report must still run. The
	// final record is the ack, so the alert comes back fresh — exactly the
	// conservative behavior a damaged history should produce.
	data, err := os.ReadFile(hist)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(hist, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut = runCLI(t, "report", "-history", hist)
	if code != 1 {
		t.Fatalf("report on torn history: exit %d, want 1 (ack record torn away)", code)
	}
	if !strings.Contains(errOut, "recovered") {
		t.Fatalf("recovery not surfaced on stderr: %q", errOut)
	}
	// The repair is durable: re-ack and the history is whole again.
	code, _, _ = runCLI(t, "ack", "-history", hist, cp.ID)
	if code != 0 {
		t.Fatalf("re-ack after recovery: exit %d", code)
	}
	code, _, _ = runCLI(t, "report", "-history", hist)
	if code != 0 {
		t.Fatalf("report after repair + re-ack: exit %d, want 0", code)
	}
}

func TestAckRefusesUnknownID(t *testing.T) {
	hist := filepath.Join(t.TempDir(), "hist.jsonl")
	fixtureHistory(t, hist)
	code, _, errOut := runCLI(t, "ack", "-history", hist, "ffffffffffff")
	if code != 2 {
		t.Fatalf("ack of unknown id: exit %d, want 2", code)
	}
	if !strings.Contains(errOut, "no current changepoint") {
		t.Fatalf("unhelpful error: %q", errOut)
	}
}

func TestIngestPybenchSnapshot(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "hist.jsonl")
	snap := filepath.Join(dir, "run.json")

	res := &harness.Result{
		Benchmark: "fib",
		Mode:      vm.ModeInterp,
		Invocations: []harness.Invocation{
			{TimesSec: []float64{0.9, 0.95}},
			{TimesSec: []float64{1.0, 1.05}},
			{TimesSec: []float64{1.1, 1.15}},
		},
	}
	var sb strings.Builder
	if err := res.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snap, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}

	code, out, errOut := runCLI(t, "ingest", "-history", hist,
		"-commit", "abcdef0123456789", "-branch", "main", "-at", "2026-08-08T00:00:00Z", snap)
	if code != 0 {
		t.Fatalf("ingest: exit %d\n%s\n%s", code, out, errOut)
	}
	if !strings.Contains(out, "ingested") || !strings.Contains(out, "pybench") {
		t.Fatalf("ingest output: %q", out)
	}

	store, err := perfstore.Open(wal.OSFS{}, hist)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	runs := store.Runs()
	if len(runs) != 1 {
		t.Fatalf("history has %d runs, want 1", len(runs))
	}
	if runs[0].Commit != "abcdef0123456789" || runs[0].Branch != "main" {
		t.Fatalf("provenance: %+v", runs[0])
	}
	if runs[0].Host != perfstore.Simulated {
		t.Fatalf("pybench run not keyed to the simulated host class: %+v", runs[0].Host)
	}
	if runs[0].Points[0].CILo == 0 && runs[0].Points[0].CIHi == 0 {
		t.Fatalf("Kalibera CI not recorded: %+v", runs[0].Points[0])
	}
}

func TestIngestBenchJSONDocUsesItsStamp(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "hist.jsonl")
	snap := filepath.Join(dir, "bench.json")
	doc := `{
  "goos": "linux", "goarch": "amd64", "cpu": "TestCPU @ 2.10GHz",
  "commit": "1234567890ab", "branch": "perf-work", "go_version": "go1.22.1",
  "time_utc": "2026-08-01T10:00:00Z",
  "benchmarks": [{"name": "BenchmarkDispatchArith", "iterations": 100, "ns_per_op": 754790}]
}`
	if err := os.WriteFile(snap, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	code, _, errOut := runCLI(t, "ingest", "-history", hist, snap)
	if code != 0 {
		t.Fatalf("ingest: exit %d\n%s", code, errOut)
	}
	store, err := perfstore.Open(wal.OSFS{}, hist)
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	rec := store.Runs()[0]
	if rec.Commit != "1234567890ab" || rec.Branch != "perf-work" {
		t.Fatalf("doc stamp not used: %+v", rec)
	}
	if rec.Host.Key() != "linux/amd64/TestCPU @ 2.10GHz" {
		t.Fatalf("host class: %q", rec.Host.Key())
	}
	if rec.Time != time.Date(2026, 8, 1, 10, 0, 0, 0, time.UTC) {
		t.Fatalf("doc time not used: %v", rec.Time)
	}
}

func TestSummaryLine(t *testing.T) {
	hist := filepath.Join(t.TempDir(), "hist.jsonl")
	fixtureHistory(t, hist)
	code, out, _ := runCLI(t, "summary", "-history", hist, "-bench", "fib", "-last", "8")
	if code != 0 {
		t.Fatalf("summary: exit %d", code)
	}
	if !strings.Contains(out, "fib/interp") || !strings.Contains(out, "↑") {
		t.Fatalf("summary line: %q", out)
	}
}

func TestReportMetricsAndTrace(t *testing.T) {
	dir := t.TempDir()
	hist := filepath.Join(dir, "hist.jsonl")
	fixtureHistory(t, hist)
	tracePath := filepath.Join(dir, "track.trace.json")

	code, out, _ := runCLI(t, "report", "-history", hist, "-metrics", "-trace", tracePath)
	if code != 1 {
		t.Fatalf("report: exit %d, want 1", code)
	}
	if !strings.Contains(out, "benchtrack_alerts_fresh") {
		t.Fatalf("metrics exposition missing:\n%s", out)
	}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	events, err := trace.Validate(data)
	if err != nil {
		t.Fatalf("trace does not validate: %v", err)
	}
	if events == 0 {
		t.Fatal("trace has no events (expected at least the alert instant)")
	}
}

func TestUsageErrors(t *testing.T) {
	if code, _, _ := runCLI(t); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "bogus"); code != 2 {
		t.Fatalf("unknown command: exit %d, want 2", code)
	}
	if code, _, _ := runCLI(t, "ingest", "-history", filepath.Join(t.TempDir(), "h.jsonl")); code != 2 {
		t.Fatalf("ingest with no files: exit %d, want 2", code)
	}
}
