// Command benchtrack is the longitudinal perf observability tool: it grows
// a committed, crash-safe history of benchmark runs (BENCH_history.jsonl)
// and scans every benchmark × host-class series for level shifts with the
// repository's own PELT changepoint machinery, attributing each shift to
// the commit range it landed in. Where cmd/benchgate answers "is this
// snapshot slower than that one?", benchtrack answers "when did we get
// slower, and which commits did it?" — CI memory instead of a single
// golden baseline.
//
// Usage:
//
//	benchtrack ingest  -history BENCH_history.jsonl run.json [more.json...]
//	benchtrack report  -history BENCH_history.jsonl [-json] [-last N]
//	benchtrack ack     -history BENCH_history.jsonl [-note TEXT] <alert-id>...
//	benchtrack summary -history BENCH_history.jsonl [-bench NAME] [-last N]
//
// ingest accepts both snapshot shapes the toolchain emits: benchjson docs
// (BENCH_vm.json — wall-clock microkernels, partitioned per host class)
// and `pybench -bench NAME -json` results (pinned-seed experiments, whose
// simulated times are host-independent and share one fleet-wide series,
// stored as Kalibera–Jones point estimates with CIs). Provenance comes
// from the document when benchjson stamped it, from -commit/-branch/-at
// flags, or from git as a last resort.
//
// report renders the trend table (sparkline history per series), the
// commit-attributed changepoint list, and the alert states: a *fresh*
// unacknowledged regression exits 1 (the repository finding code) so a CI
// job fails until the alert is either fixed or accepted with
// `benchtrack ack <id>`, which appends the acknowledgement to the history
// itself — the alert state travels with the data.
//
// Exit codes follow the repository taxonomy: 0 = pass; 1 = fresh
// regression alert; 2 = usage; 3 = unreadable input or history.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"
	"time"

	"repro/internal/exitcode"
	"repro/internal/metrics"
	"repro/internal/perfstore"
	"repro/internal/trace"
	"repro/internal/version"
	"repro/internal/wal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and an exit code, so tests drive the
// whole CLI in-process.
func run(args []string, stdout, stderr io.Writer) int {
	if len(args) == 0 {
		usage(stderr)
		return exitcode.Usage
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "ingest":
		return runIngest(rest, stdout, stderr)
	case "report":
		return runReport(rest, stdout, stderr)
	case "ack":
		return runAck(rest, stdout, stderr)
	case "summary":
		return runSummary(rest, stdout, stderr)
	case "-version", "version":
		fmt.Fprintln(stdout, version.String())
		return exitcode.OK
	default:
		fmt.Fprintf(stderr, "benchtrack: unknown command %q\n", cmd)
		usage(stderr)
		return exitcode.Usage
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `usage:
  benchtrack ingest  -history FILE [-commit SHA] [-branch NAME] [-at RFC3339] snapshot.json...
  benchtrack report  -history FILE [-json] [-last N] [-min-delta PCT] [-trace FILE] [-metrics]
  benchtrack ack     -history FILE [-note TEXT] <alert-id>...
  benchtrack summary -history FILE [-bench NAME] [-last N]
`)
}

// observability bundles the optional sinks every subcommand wires up.
type observability struct {
	tracer    *trace.Tracer
	reg       *metrics.Registry
	tracePath string
	metricsOn bool
}

func observe(fs *flag.FlagSet) *observability {
	o := &observability{}
	fs.StringVar(&o.tracePath, "trace", "", "write ingest/alert instant events as Chrome trace JSON to this file")
	fs.BoolVar(&o.metricsOn, "metrics", false, "print the benchtrack telemetry snapshot after the command")
	return o
}

// start instantiates the sinks after flag parsing (nil sinks cost nothing).
func (o *observability) start() {
	if o.tracePath != "" {
		o.tracer = trace.New()
		o.tracer.SetMeta("producer", version.Producer())
		o.tracer.SetMeta("tool", "benchtrack")
	}
	if o.metricsOn {
		o.reg = metrics.NewRegistry()
	}
}

// finish flushes the sinks. Returns false on an infrastructure failure.
func (o *observability) finish(stdout, stderr io.Writer) bool {
	if o.reg != nil {
		if err := o.reg.Snapshot().WriteText(stdout); err != nil {
			fmt.Fprintln(stderr, "benchtrack: writing metrics:", err)
			return false
		}
	}
	if o.tracer != nil {
		f, err := os.Create(o.tracePath)
		if err != nil {
			fmt.Fprintln(stderr, "benchtrack: creating trace file:", err)
			return false
		}
		if err := o.tracer.Export(f); err != nil {
			//benchlint:allow uncheckederr — cleanup; the Export error wins
			f.Close()
			fmt.Fprintln(stderr, "benchtrack: writing trace:", err)
			return false
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(stderr, "benchtrack: writing trace:", err)
			return false
		}
	}
	return true
}

// gaugeTrends publishes the trend-summary instruments every invocation
// refreshes: history size, series count, and the alert split.
func gaugeTrends(reg *metrics.Registry, rep perfstore.TrendReport) {
	reg.Gauge("benchtrack_history_runs", "run records in the history").Set(float64(rep.Runs))
	reg.Gauge("benchtrack_series", "benchmark × host-class series tracked").Set(float64(len(rep.Series)))
	reg.Gauge("benchtrack_changepoints", "changepoints detected across all series").Set(float64(len(rep.Changepoints)))
	reg.Gauge("benchtrack_alerts_fresh", "fresh unacknowledged regression alerts").Set(float64(rep.FreshRegressions))
	reg.Gauge("benchtrack_alerts_acked", "acknowledged changepoints").Set(float64(rep.AckedChangepoints))
}

func openStore(path string, stderr io.Writer) (*perfstore.Store, int) {
	store, err := perfstore.Open(wal.OSFS{}, path)
	if err != nil {
		fmt.Fprintln(stderr, "benchtrack:", err)
		return nil, exitcode.Infra
	}
	if rec := store.Recovery(); !rec.Clean() {
		fmt.Fprintf(stderr, "benchtrack: history recovered: %s\n", rec)
	}
	return store, exitcode.OK
}

func runIngest(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("benchtrack ingest", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		histPath   = fs.String("history", "BENCH_history.jsonl", "history journal to append to")
		commit     = fs.String("commit", "", "commit SHA to attribute this run to (default: snapshot stamp, then git rev-parse HEAD)")
		branch     = fs.String("branch", "", "branch name (default: snapshot stamp, then git)")
		at         = fs.String("at", "", "RFC3339 UTC timestamp of the run (default: snapshot stamp, then now)")
		confidence = fs.Float64("confidence", 0.95, "CI level for pinned-seed experiment point estimates")
	)
	obs := observe(fs)
	if err := fs.Parse(args); err != nil {
		return exitcode.Usage
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "benchtrack: ingest needs at least one snapshot file")
		return exitcode.Usage
	}
	var atTime time.Time
	if *at != "" {
		t, err := time.Parse(time.RFC3339, *at)
		if err != nil {
			fmt.Fprintf(stderr, "benchtrack: bad -at %q: %v\n", *at, err)
			return exitcode.Usage
		}
		atTime = t.UTC()
	}
	obs.start()
	store, code := openStore(*histPath, stderr)
	if code != exitcode.OK {
		return code
	}
	// The journal is a write path here: a failed final close can lose the
	// last appended record, so it must surface as an infra failure.
	defer func() {
		if err := store.Close(); err != nil {
			fmt.Fprintln(stderr, "benchtrack: closing history:", err)
			if code == exitcode.OK {
				code = exitcode.Infra
			}
		}
	}()

	ingested := obs.reg.Counter("benchtrack_ingested_runs_total", "run records appended by ingest")
	points := obs.reg.Counter("benchtrack_ingested_points_total", "benchmark points appended by ingest")
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(stderr, "benchtrack:", err)
			return exitcode.Infra
		}
		rec, err := perfstore.ParseSnapshot(data, *confidence)
		if err != nil {
			fmt.Fprintf(stderr, "benchtrack: %s: %v\n", path, err)
			return exitcode.Infra
		}
		fillProvenance(&rec, *commit, *branch, atTime)
		if err := store.Append(rec); err != nil {
			fmt.Fprintln(stderr, "benchtrack:", err)
			return exitcode.Infra
		}
		ingested.Inc()
		points.Add(uint64(len(rec.Points)))
		obs.tracer.Instant(trace.CatTrack, "ingest",
			"file", path, "source", rec.Source, "commit", rec.ShortCommit(),
			"points", fmt.Sprint(len(rec.Points)))
		fmt.Fprintf(stdout, "benchtrack: ingested %s: %d point(s) from %s at %s (%s)\n",
			path, len(rec.Points), rec.Source, rec.ShortCommit(), rec.Host.Key())
	}
	rep := perfstore.Analyze(store.Runs(), store.Acked(), perfstore.AnalyzeOptions{})
	gaugeTrends(obs.reg, rep)
	if !obs.finish(stdout, stderr) {
		return exitcode.Infra
	}
	return exitcode.OK
}

// fillProvenance resolves the attribution fields by priority: explicit
// flag, then the snapshot's own stamp, then git, then (for time) the wall
// clock. Missing provenance degrades attribution, never ingestion.
func fillProvenance(rec *perfstore.Record, commit, branch string, at time.Time) {
	if commit != "" {
		rec.Commit = commit
	}
	if branch != "" {
		rec.Branch = branch
	}
	if !at.IsZero() {
		rec.Time = at
	}
	if rec.Commit == "" {
		rec.Commit = gitOutput("rev-parse", "HEAD")
	}
	if rec.Branch == "" {
		rec.Branch = gitOutput("rev-parse", "--abbrev-ref", "HEAD")
	}
	if rec.Time.IsZero() {
		rec.Time = time.Now().UTC() //benchlint:allow clock
	}
}

// gitOutput shells out to git, returning "" when git or the repo is absent
// — benchtrack must work on exported trees too.
func gitOutput(args ...string) string {
	out, err := exec.Command("git", args...).Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func runReport(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchtrack report", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		histPath = fs.String("history", "BENCH_history.jsonl", "history journal to analyze")
		asJSON   = fs.Bool("json", false, "emit the stable JSON report instead of text")
		lastN    = fs.Int("last", 10, "window for the one-line summary")
		minDelta = fs.Float64("min-delta", 0, "practical-effect floor in percent (0 = default 5)")
		penalty  = fs.Float64("penalty", 0, "PELT penalty (0 = robust default)")
	)
	obs := observe(fs)
	if err := fs.Parse(args); err != nil {
		return exitcode.Usage
	}
	obs.start()
	store, code := openStore(*histPath, stderr)
	if code != exitcode.OK {
		return code
	}
	//benchlint:allow uncheckederr — read-only use of the journal
	defer store.Close()

	span := obs.tracer.Begin(trace.CatTrack, "analyze", "history", *histPath)
	rep := perfstore.Analyze(store.Runs(), store.Acked(), perfstore.AnalyzeOptions{
		Penalty:     *penalty,
		MinDeltaPct: *minDelta,
	})
	span.SetArg("runs", fmt.Sprint(rep.Runs))
	span.SetArg("series", fmt.Sprint(len(rep.Series)))
	span.SetArg("changepoints", fmt.Sprint(len(rep.Changepoints)))
	span.End()
	gaugeTrends(obs.reg, rep)
	for _, cp := range rep.Changepoints {
		if cp.Regression && !cp.Acked {
			obs.tracer.Instant(trace.CatTrack, "alert",
				"id", cp.ID, "benchmark", cp.Key.Benchmark, "host", cp.Key.Host,
				"range", cp.Range(), "delta_pct", fmt.Sprintf("%.1f", cp.DeltaPct))
		}
	}
	if *asJSON {
		if err := rep.WriteJSON(stdout); err != nil {
			fmt.Fprintln(stderr, "benchtrack:", err)
			return exitcode.Infra
		}
	} else {
		rep.Render(stdout)
		if line := perfstore.TrendLine(store.Runs(), store.Acked(), "", *lastN); line != "" {
			fmt.Fprintf(stdout, "\nbenchtrack: %s\n", line)
		}
	}
	if !obs.finish(stdout, stderr) {
		return exitcode.Infra
	}
	if rep.FreshRegressions > 0 {
		fmt.Fprintf(stderr, "benchtrack: FAIL: %d fresh unacknowledged regression alert(s); review and fix, or accept with 'benchtrack ack <id>'\n",
			rep.FreshRegressions)
		return exitcode.Finding
	}
	return exitcode.OK
}

func runAck(args []string, stdout, stderr io.Writer) (code int) {
	fs := flag.NewFlagSet("benchtrack ack", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		histPath = fs.String("history", "BENCH_history.jsonl", "history journal to append the acknowledgement to")
		note     = fs.String("note", "", "why this shift is accepted (recorded in the history)")
	)
	obs := observe(fs)
	if err := fs.Parse(args); err != nil {
		return exitcode.Usage
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(stderr, "benchtrack: ack needs at least one alert id")
		return exitcode.Usage
	}
	obs.start()
	store, code := openStore(*histPath, stderr)
	if code != exitcode.OK {
		return code
	}
	// The journal is a write path here: a failed final close can lose the
	// last appended record, so it must surface as an infra failure.
	defer func() {
		if err := store.Close(); err != nil {
			fmt.Fprintln(stderr, "benchtrack: closing history:", err)
			if code == exitcode.OK {
				code = exitcode.Infra
			}
		}
	}()

	// Refuse to ack ids that no current changepoint carries: a typo'd ack
	// would silently arm itself against a future alert.
	rep := perfstore.Analyze(store.Runs(), store.Acked(), perfstore.AnalyzeOptions{})
	known := map[string]bool{}
	for _, cp := range rep.Changepoints {
		known[cp.ID] = true
	}
	for _, id := range fs.Args() {
		if !known[id] {
			fmt.Fprintf(stderr, "benchtrack: no current changepoint has id %q (see 'benchtrack report')\n", id)
			return exitcode.Usage
		}
		if err := store.Append(perfstore.Record{
			Kind:    perfstore.KindAck,
			AlertID: id,
			Note:    *note,
			Time:    time.Now().UTC(), //benchlint:allow clock
		}); err != nil {
			fmt.Fprintln(stderr, "benchtrack:", err)
			return exitcode.Infra
		}
		obs.reg.Counter("benchtrack_acks_total", "acknowledgements recorded").Inc()
		obs.tracer.Instant(trace.CatTrack, "ack", "id", id)
		fmt.Fprintf(stdout, "benchtrack: acknowledged %s\n", id)
	}
	if !obs.finish(stdout, stderr) {
		return exitcode.Infra
	}
	return exitcode.OK
}

func runSummary(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchtrack summary", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		histPath = fs.String("history", "BENCH_history.jsonl", "history journal to summarize")
		bench    = fs.String("bench", "", "restrict to one benchmark ('' = all series)")
		lastN    = fs.Int("last", 10, "window size")
	)
	if err := fs.Parse(args); err != nil {
		return exitcode.Usage
	}
	store, code := openStore(*histPath, stderr)
	if code != exitcode.OK {
		return code
	}
	//benchlint:allow uncheckederr — read-only use of the journal
	defer store.Close()
	line := perfstore.TrendLine(store.Runs(), store.Acked(), *bench, *lastN)
	if line == "" {
		fmt.Fprintf(stdout, "benchtrack: no history for %q in %s\n", *bench, *histPath)
		return exitcode.OK
	}
	fmt.Fprintf(stdout, "benchtrack: %s\n", line)
	return exitcode.OK
}
