package main

import (
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/controlapi"
	"repro/internal/core"
	"repro/internal/faults"
	"repro/internal/noise"
	"repro/internal/trace"
	"repro/internal/version"
)

// noObs is the disabled observability bundle used by tests that exercise
// other behavior; every sink is nil so it must be free.
func noObs() *observability { return newObservability("", false) }

func TestNoiseByName(t *testing.T) {
	cases := map[string]noise.Params{
		"":        noise.Default(),
		"default": noise.Default(),
		"quiet":   noise.Quiet(),
		"noisy":   noise.Noisy(),
	}
	for name, want := range cases {
		got, err := noiseByName(name)
		if err != nil {
			t.Fatalf("noiseByName(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("noiseByName(%q) = %+v", name, got)
		}
	}
	if _, err := noiseByName("bogus"); err == nil {
		t.Fatal("unknown noise name must error")
	}
	none, err := noiseByName("none")
	if err != nil {
		t.Fatal(err)
	}
	if none.InvocationSigma != 0 || none.SpikeProb != 0 {
		t.Fatalf("none model should be noiseless: %+v", none)
	}
}

// benchSpec builds the single-benchmark campaign spec the -bench path
// constructs from flags.
func benchSpec(name, mode string, inv, iter int, seed uint64, noiseName string) controlapi.CampaignSpec {
	return controlapi.CampaignSpec{
		Benchmarks:  []string{name},
		Mode:        mode,
		Invocations: inv,
		Iterations:  iter,
		Seed:        seed,
		Noise:       noiseName,
	}
}

func TestDoBenchErrors(t *testing.T) {
	err := doBench(benchSpec("no-such-benchmark", "interp", 0, 0, 0, ""), "", "", false, noObs())
	if err == nil {
		t.Fatal("unknown benchmark must error")
	}
	// The error must point the user at what they can actually run.
	for _, want := range []string{"no-such-benchmark", "fib", "-list"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("unknown-benchmark error missing %q: %v", want, err)
		}
	}
	if err := doBench(benchSpec("fib", "turbo", 0, 0, 0, ""), "", "", false, noObs()); err == nil {
		t.Fatal("unknown mode must error")
	}
}

func TestDoProfileAndDisassembleErrors(t *testing.T) {
	if err := doProfile("no-such-benchmark", ""); err == nil {
		t.Fatal("unknown benchmark must error")
	}
	if err := doDisassemble("no-such-benchmark", 0); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestDoExperimentsUnknownID(t *testing.T) {
	if err := doExperiments("T99", core.Config{Invocations: 2, Iterations: 2}, renderText); err == nil {
		t.Fatal("unknown experiment id must error")
	}
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns
// everything it printed. f's error fails the test.
func captureStdout(t *testing.T, f func() error) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	ferr := f()
	w.Close()
	os.Stdout = old
	out, rerr := io.ReadAll(r)
	if rerr != nil {
		t.Fatal(rerr)
	}
	if ferr != nil {
		t.Fatalf("%v\noutput:\n%s", ferr, out)
	}
	return string(out)
}

func TestSupervisorOptionsMapping(t *testing.T) {
	cfg := core.Config{Retries: 3, Quorum: 2, Faults: faults.Light(), FaultSeed: 99}
	so := supervisorOptions(cfg)
	if so.MaxRetries != 3 || so.Quorum != 2 || so.FaultSeed != 99 || so.Faults != faults.Light() {
		t.Fatalf("supervision policy lost in translation: %+v", so)
	}
	if so.Checkpoint != nil {
		t.Fatal("checkpoint stores are attached per experiment, not globally")
	}
}

func TestDoBenchSupervisedWithFaults(t *testing.T) {
	dir := t.TempDir()
	spec := benchSpec("fib", "interp", 3, 4, 7, "quiet")
	spec.Retries = 4
	spec.Quorum = 2
	spec.Faults = "panic=0.3"
	out := captureStdout(t, func() error { return doBench(spec, dir, "", false, noObs()) })
	for _, want := range []string{"effective N", "retries / dropped / quarantined"} {
		if !strings.Contains(out, want) {
			t.Errorf("supervised -bench output missing %q:\n%s", want, out)
		}
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.ckpt.wal"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no checkpoint written to %s (err %v)", dir, err)
	}
	// Re-running against the completed checkpoint must succeed (nothing
	// re-runs) and report the same numbers, plus the resume annotation.
	again := captureStdout(t, func() error { return doBench(spec, dir, "", false, noObs()) })
	if !strings.Contains(again, "resumed at invocation 3") {
		t.Errorf("resumed -bench missing resume annotation:\n%s", again)
	}
	if stripped := strings.ReplaceAll(again, "; resumed at invocation 3", ""); stripped != out {
		t.Errorf("resumed -bench differs from original:\n--- first\n%s--- resumed\n%s", out, again)
	}
}

func TestTraceFlagWritesValidChromeTrace(t *testing.T) {
	traceFile := filepath.Join(t.TempDir(), "out.trace.json")
	o := newObservability(traceFile, false)
	captureStdout(t, func() error {
		if err := doBench(benchSpec("fib", "interp", 2, 3, 7, "quiet"), "", "", false, o); err != nil {
			return err
		}
		return o.finish(os.Stdout, true)
	})
	data, err := os.ReadFile(traceFile)
	if err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
	n, err := trace.Validate(data)
	if err != nil {
		t.Fatalf("emitted trace is not schema-valid: %v", err)
	}
	if n == 0 {
		t.Fatal("trace has no events")
	}
	if err := trace.ValidateSpans(data, trace.CatSuite, trace.CatBenchmark,
		trace.CatInvocation, trace.CatIteration, trace.CatPhase); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), version.Producer()) {
		t.Error("trace metadata missing producer stamp")
	}
}

func TestMetricsFlagRidesBenchJSON(t *testing.T) {
	o := newObservability("", true)
	out := captureStdout(t, func() error {
		if err := doBench(benchSpec("fib", "interp", 2, 2, 7, "quiet"), "", "", true, o); err != nil {
			return err
		}
		// -json suppresses the text snapshot so stdout stays a JSON document.
		return o.finish(os.Stdout, false)
	})
	for _, want := range []string{`"metrics"`, "harness_invocations_total",
		"harness_timer_overhead_ns", "harness_gc_pause_ns_total"} {
		if !strings.Contains(out, want) {
			t.Errorf("-json output missing %q", want)
		}
	}
	if strings.Contains(out, "# HELP") {
		t.Error("text exposition leaked into -json stdout")
	}
}

func TestMetricsFlagPrintsTextSnapshot(t *testing.T) {
	o := newObservability("", true)
	out := captureStdout(t, func() error {
		if err := doBench(benchSpec("fib", "interp", 1, 2, 7, "quiet"), "", "", false, o); err != nil {
			return err
		}
		return o.finish(os.Stdout, true)
	})
	for _, want := range []string{"# HELP", "harness_invocations_total 1",
		"harness_timer_resolution_ns"} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics snapshot missing %q:\n%s", want, out)
		}
	}
}

func TestDoProfileReconcilesAndWritesCollapsed(t *testing.T) {
	collapsed := filepath.Join(t.TempDir(), "fib.folded")
	out := captureStdout(t, func() error { return doProfile("fib", collapsed) })
	// Interpreter with no probe: attribution must reconcile exactly.
	if !strings.Contains(out, "(100.00% reconciled)") {
		t.Errorf("profile not reconciled:\n%s", out)
	}
	for _, want := range []string{"Line profile: fib", "By function", "By opcode", "fib"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile output missing %q", want)
		}
	}
	data, err := os.ReadFile(collapsed)
	if err != nil {
		t.Fatalf("collapsed stacks not written: %v", err)
	}
	if !strings.Contains(string(data), "run;fib;fib ") {
		t.Errorf("folded stacks missing recursive fib frames:\n%s", data)
	}
}

func TestVersionString(t *testing.T) {
	s := version.String()
	for _, want := range []string{"pybench", version.Version, "go"} {
		if !strings.Contains(s, want) {
			t.Errorf("version string missing %q: %s", want, s)
		}
	}
}

func TestBenchmarkNamesInventory(t *testing.T) {
	names := benchmarkNames()
	if len(names) == 0 {
		t.Fatal("no benchmarks in inventory")
	}
	err := unknownBenchmark("bogus")
	for _, n := range names {
		if !strings.Contains(err.Error(), n) {
			t.Errorf("unknownBenchmark hint missing %q", n)
		}
	}
}

func TestDoSuiteSupervisedFootnotes(t *testing.T) {
	cfg := core.Config{
		Invocations: 2,
		Iterations:  2,
		Seed:        7,
		Noise:       noise.Quiet(),
		Retries:     3,
		Quorum:      1,
		Faults:      faults.Params{PanicProb: 0.2},
	}
	out := captureStdout(t, func() error { return doSuite(cfg, renderText, noObs()) })
	if !strings.Contains(out, "note: supervised: faults=panic=0.2, retries=3, quorum=1") {
		t.Errorf("suite output missing supervision footnote:\n%s", out)
	}
	if !strings.Contains(out, "GEOMEAN") {
		t.Errorf("suite table incomplete:\n%s", out)
	}
}
