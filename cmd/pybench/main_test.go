package main

import (
	"testing"

	"repro/internal/core"
	"repro/internal/noise"
)

func TestNoiseByName(t *testing.T) {
	cases := map[string]noise.Params{
		"":        noise.Default(),
		"default": noise.Default(),
		"quiet":   noise.Quiet(),
		"noisy":   noise.Noisy(),
	}
	for name, want := range cases {
		got, err := noiseByName(name)
		if err != nil {
			t.Fatalf("noiseByName(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("noiseByName(%q) = %+v", name, got)
		}
	}
	if _, err := noiseByName("bogus"); err == nil {
		t.Fatal("unknown noise name must error")
	}
	none, err := noiseByName("none")
	if err != nil {
		t.Fatal(err)
	}
	if none.InvocationSigma != 0 || none.SpikeProb != 0 {
		t.Fatalf("none model should be noiseless: %+v", none)
	}
}

func TestDoBenchErrors(t *testing.T) {
	if err := doBench("no-such-benchmark", "interp", core.Config{}, false); err == nil {
		t.Fatal("unknown benchmark must error")
	}
	if err := doBench("fib", "turbo", core.Config{}, false); err == nil {
		t.Fatal("unknown mode must error")
	}
}

func TestDoProfileAndDisassembleErrors(t *testing.T) {
	if err := doProfile("no-such-benchmark"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
	if err := doDisassemble("no-such-benchmark"); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestDoExperimentsUnknownID(t *testing.T) {
	if err := doExperiments("T99", core.Config{Invocations: 2, Iterations: 2}, renderText); err == nil {
		t.Fatal("unknown experiment id must error")
	}
}
