// Command pybench regenerates the paper's tables and figures and runs
// individual benchmark experiments from the command line.
//
// Usage:
//
//	pybench -list                         # list benchmarks and experiments
//	pybench -exp T2                       # regenerate one table/figure
//	pybench -exp all                      # regenerate everything
//	pybench -bench nbody -mode jit        # run one experiment and summarize
//	pybench -bench nbody -json            # raw per-invocation data as JSON
//	pybench -suite                        # Holm-corrected suite comparison
//	pybench -profile dictstress           # per-opcode execution profile
//	pybench -dis fib                      # bytecode disassembly
//	pybench -exp F3 -csv                  # CSV output (also: -markdown)
//
// Scale/noise knobs: -invocations, -iterations, -trials, -seed, -noise
// {default,quiet,noisy,none}.
//
// Fault-tolerance knobs (supervised execution): -faults {none,light,heavy,
// kind=prob,...}, -retries N, -quorum K, -resume DIR. With -resume, an
// interrupted run picks up where it left off, skipping completed
// invocations; the same seed always reproduces the same fault schedule.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/counters"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/methodology"
	"repro/internal/noise"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	var (
		list        = flag.Bool("list", false, "list benchmarks and experiment ids")
		exp         = flag.String("exp", "", "experiment id (T1..T5, F1..F8, A1..A6) or 'all'")
		bench       = flag.String("bench", "", "run a single benchmark experiment")
		mode        = flag.String("mode", "interp", "engine for -bench: interp or jit")
		invocations = flag.Int("invocations", 0, "invocations per experiment (0 = default)")
		iterations  = flag.Int("iterations", 0, "iterations per invocation (0 = default)")
		trials      = flag.Int("trials", 0, "synthetic trials for T4/F8 (0 = default)")
		seed        = flag.Uint64("seed", 0, "experiment seed (0 = default)")
		noiseName   = flag.String("noise", "default", "noise model: default, quiet, noisy, none")
		csv         = flag.Bool("csv", false, "emit tables as CSV")
		markdown    = flag.Bool("markdown", false, "emit tables as Markdown")
		suite       = flag.Bool("suite", false, "rigorous interp-vs-JIT suite comparison with Holm correction")
		jsonOut     = flag.Bool("json", false, "with -bench: dump the raw result (all invocations) as JSON")
		profile     = flag.String("profile", "", "print the per-opcode execution profile of a benchmark")
		dis         = flag.String("dis", "", "disassemble a benchmark's bytecode")
		faultsSpec  = flag.String("faults", "", "fault injection: none, light, heavy, or kind=prob list (kinds: panic, hang, corrupt, checksum, compile)")
		retries     = flag.Int("retries", 0, "per-invocation retry budget for supervised runs")
		quorum      = flag.Int("quorum", 0, "minimum successful invocations per experiment (0 = all)")
		resume      = flag.String("resume", "", "checkpoint directory: save progress after every invocation and resume interrupted runs")
	)
	flag.Parse()

	np, err := noiseByName(*noiseName)
	if err != nil {
		fatal(err)
	}
	fp, err := faults.Parse(*faultsSpec)
	if err != nil {
		fatal(err)
	}
	if *resume != "" {
		if err := os.MkdirAll(*resume, 0o755); err != nil {
			fatal(fmt.Errorf("creating checkpoint dir: %w", err))
		}
	}
	cfg := core.Config{
		Seed:          *seed,
		Invocations:   *invocations,
		Iterations:    *iterations,
		Trials:        *trials,
		Noise:         np,
		Retries:       *retries,
		Quorum:        *quorum,
		Faults:        fp,
		CheckpointDir: *resume,
	}

	style := renderText
	if *csv {
		style = renderCSV
	}
	if *markdown {
		style = renderMarkdown
	}

	switch {
	case *list:
		doList()
	case *profile != "":
		if err := doProfile(*profile); err != nil {
			fatal(err)
		}
	case *dis != "":
		if err := doDisassemble(*dis); err != nil {
			fatal(err)
		}
	case *suite:
		if err := doSuite(cfg, style); err != nil {
			fatal(err)
		}
	case *bench != "":
		if err := doBench(*bench, *mode, cfg, *jsonOut); err != nil {
			fatal(err)
		}
	case *exp != "":
		if err := doExperiments(*exp, cfg, style); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

// renderStyle selects the table output format.
type renderStyle int

const (
	renderText renderStyle = iota
	renderCSV
	renderMarkdown
)

func emit(out fmt.Stringer, style renderStyle) {
	if tbl, ok := out.(*report.Table); ok {
		switch style {
		case renderCSV:
			tbl.CSV(os.Stdout)
			return
		case renderMarkdown:
			tbl.Markdown(os.Stdout)
			fmt.Println()
			return
		}
	}
	fmt.Println(out.String())
}

// supervisorOptions maps the CLI's supervision config onto the harness
// policy (checkpoint stores are attached per experiment by the callers).
func supervisorOptions(cfg core.Config) harness.SupervisorOptions {
	return harness.SupervisorOptions{
		MaxRetries: cfg.Retries,
		Quorum:     cfg.Quorum,
		Faults:     cfg.Faults,
		FaultSeed:  cfg.FaultSeed,
	}
}

// doSuite runs the rigorous methodology across the whole suite with
// family-wise (Holm–Bonferroni) error control, under fault-tolerant
// supervision when configured.
func doSuite(cfg core.Config, style renderStyle) error {
	inv, iter := cfg.Invocations, cfg.Iterations
	if inv == 0 {
		inv = 10
	}
	if iter == 0 {
		iter = 30
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 42
	}
	np := cfg.Noise
	if np == (noise.Params{}) {
		np = noise.Default()
	}
	runner := harness.NewRunner()
	var names []string
	var baselines, treatments []stats.HierarchicalSample
	var degradedNotes []string
	opts := harness.Options{Invocations: inv, Iterations: iter, Seed: seed, Noise: np}
	for _, wl := range workloads.Suite() {
		var interp, jit *harness.Result
		var err error
		if cfg.Supervised() {
			so := supervisorOptions(cfg)
			if cfg.CheckpointDir != "" {
				so.Checkpoint = harness.FileCheckpoint{
					Path: filepath.Join(cfg.CheckpointDir, wl.Name+".ckpt.json"),
				}
			}
			interp, jit, err = harness.NewSupervisor(runner, so).RunPair(wl, opts)
		} else {
			interp, jit, err = runner.RunPair(wl, opts)
		}
		if err != nil {
			return err
		}
		names = append(names, wl.Name)
		baselines = append(baselines, interp.Hierarchical())
		treatments = append(treatments, jit.Hierarchical())
		for _, arm := range []*harness.Result{interp, jit} {
			if sv := arm.Supervision; sv != nil && sv.Degraded() {
				degradedNotes = append(degradedNotes,
					fmt.Sprintf("%s/%s: %s", wl.Name, arm.Mode, sv.Summary()))
			}
		}
	}
	results := methodology.CompareSuite(names, baselines, treatments,
		methodology.Rigorous{Seed: seed}, 0.05)
	t := report.NewTable(
		fmt.Sprintf("Suite comparison: JIT vs interpreter (%d×%d, Holm at α=0.05)", inv, iter),
		"benchmark", "speedup", "CI lo", "CI hi", "p-value", "verdict")
	var speedups []float64
	for _, r := range results {
		t.AddRow(r.Benchmark, r.Speedup, r.CI.Lo, r.CI.Hi, r.PValue, r.Verdict.String())
		speedups = append(speedups, r.Speedup)
	}
	t.AddRow("GEOMEAN", stats.GeoMean(speedups), "", "", "", "")
	t.Caption = "Verdicts are Holm–Bonferroni adjusted: family-wise false-positive rate ≤ 5%."
	if cfg.Supervised() {
		t.AddFootnote("supervised: faults=%s, retries=%d, quorum=%d",
			cfg.Faults, cfg.Retries, cfg.Quorum)
	}
	for _, n := range degradedNotes {
		t.AddFootnote("%s", n)
	}
	emit(t, style)
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pybench:", err)
	os.Exit(1)
}

func noiseByName(name string) (noise.Params, error) {
	switch name {
	case "default", "":
		return noise.Default(), nil
	case "quiet":
		return noise.Quiet(), nil
	case "noisy":
		return noise.Noisy(), nil
	case "none":
		// The zero Params would be replaced by the default in core.Config,
		// so nudge one field to keep it distinct while staying noiseless.
		return noise.Params{SpikeProb: 0, IterationSigma: 1e-12}, nil
	}
	return noise.Params{}, fmt.Errorf("unknown noise model %q", name)
}

func doList() {
	t := report.NewTable("Benchmarks (canonical suite)", "name", "class", "description")
	for _, b := range workloads.Suite() {
		t.AddRow(b.Name, string(b.Class), b.Description)
	}
	fmt.Print(t.String())
	fmt.Println()
	x := report.NewTable("Extended workloads (usable with -bench/-profile/-dis)",
		"name", "class", "description")
	for _, b := range workloads.Extended() {
		x.AddRow(b.Name, string(b.Class), b.Description)
	}
	fmt.Print(x.String())
	fmt.Println()
	fmt.Println("Experiments:", core.ExperimentIDs())
}

func doExperiments(id string, cfg core.Config, style renderStyle) error {
	engine := core.New(cfg)
	ids := []string{id}
	if id == "all" {
		ids = core.ExperimentIDs()
	}
	for _, x := range ids {
		out, err := engine.Experiment(x)
		if err != nil {
			return err
		}
		emit(out, style)
	}
	return nil
}

func doBench(name, modeName string, cfg core.Config, jsonOut bool) error {
	b, ok := workloads.ByName(name)
	if !ok {
		return fmt.Errorf("unknown benchmark %q (try -list)", name)
	}
	var mode vm.Mode
	switch modeName {
	case "interp":
		mode = vm.ModeInterp
	case "jit":
		mode = vm.ModeJIT
	default:
		return fmt.Errorf("unknown mode %q", modeName)
	}
	inv, iter := cfg.Invocations, cfg.Iterations
	if inv == 0 {
		inv = 10
	}
	if iter == 0 {
		iter = 30
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 42
	}
	np := cfg.Noise
	if np == (noise.Params{}) {
		np = noise.Default()
	}
	so := supervisorOptions(cfg)
	if cfg.CheckpointDir != "" {
		so.Checkpoint = harness.FileCheckpointFor(cfg.CheckpointDir, b.Name, mode)
	}
	// Supervision with the zero policy is free (byte-identical to the bare
	// Runner), so -bench always runs supervised and always reports its
	// effective N.
	res, err := harness.NewSupervisor(harness.NewRunner(), so).Run(b, harness.Options{
		Mode:        mode,
		Invocations: inv,
		Iterations:  iter,
		Seed:        seed,
		Noise:       np,
	})
	if err != nil {
		if res != nil && res.Supervision != nil {
			fmt.Fprintln(os.Stderr, "pybench:", res.Supervision.Summary())
		}
		return err
	}
	if jsonOut {
		return res.WriteJSON(os.Stdout)
	}
	hs, srep := stats.Sanitize(res.Hierarchical())
	means := hs.InvocationMeans()
	ci := stats.KaliberaMeanCI(hs, 0.95)
	vd := stats.DecomposeVariance(hs)
	rep := methodology.ClassifyExperiment(hs)
	sv := res.Supervision

	t := report.NewTable(fmt.Sprintf("%s / %s (%d×%d, seed %d)", b.Name, mode, inv, iter, seed),
		"metric", "value")
	t.AddRow("mean (ms)", 1e3*stats.Mean(means))
	t.AddRow("median (ms)", 1e3*stats.Median(means))
	t.AddRow("CoV invocations (%)", 100*stats.CoV(means))
	t.AddRow("95% CI (ms)", fmt.Sprintf("[%s, %s]",
		report.FormatFloat(1e3*ci.Lo), report.FormatFloat(1e3*ci.Hi)))
	t.AddRow("between-invocation var frac (%)", 100*vd.BetweenFraction())
	t.AddRow("steady-state class", rep.Class.String())
	t.AddRow("mean steady start (iter)", rep.MeanSteadyStart)
	t.AddRow("effective N", fmt.Sprintf("%d/%d", hs.EffectiveInvocations(), sv.Planned))
	t.AddRow("retries / dropped / quarantined",
		fmt.Sprintf("%d / %d / %d", sv.Retries, sv.Dropped, sv.QuarantinedSamples))
	if len(res.Invocations) > 0 {
		t.AddRow("checksum", res.Invocations[0].Checksum)
	}
	if sv.Degraded() || sv.InjectedFaults > 0 {
		t.AddFootnote("%s", sv.Summary())
	}
	if !srep.Clean() {
		t.AddFootnote("analysis sanitized: %d samples quarantined, %d invocations dropped",
			srep.QuarantinedSamples, srep.DroppedInvocations)
	}
	fmt.Print(t.String())
	return nil
}

// doProfile prints the per-opcode execution profile of one run() call.
func doProfile(name string) error {
	b, ok := workloads.ByName(name)
	if !ok {
		return fmt.Errorf("unknown benchmark %q (try -list)", name)
	}
	code, err := b.Compile()
	if err != nil {
		return err
	}
	model := counters.NewModel()
	engine := vm.New(vm.Config{Probe: model})
	if _, err := engine.RunModule(code); err != nil {
		return err
	}
	model.Reset() // profile the measured iteration only, not module setup
	if _, err := engine.CallGlobal("run"); err != nil {
		return err
	}
	top := model.TopOps(15)
	t := report.NewTable(fmt.Sprintf("Opcode profile: %s (one run() call, interpreter)", name),
		"opcode", "count", "% of ops")
	total := float64(model.Ops)
	for _, oc := range top {
		t.AddRow(oc.Op.String(), oc.Count, fmt.Sprintf("%.1f", 100*float64(oc.Count)/total))
	}
	snap := model.Snapshot()
	t.Caption = fmt.Sprintf("%d ops, %d instructions, IPC %.2f, dispatch miss %.0f%%.",
		model.Ops, model.Instructions, snap.IPC, 100*snap.DispatchMiss)
	fmt.Print(t.String())
	return nil
}

// doDisassemble prints a benchmark's compiled bytecode.
func doDisassemble(name string) error {
	b, ok := workloads.ByName(name)
	if !ok {
		return fmt.Errorf("unknown benchmark %q (try -list)", name)
	}
	code, err := b.Compile()
	if err != nil {
		return err
	}
	fmt.Print(code.Disassemble())
	return nil
}
