// Command pybench regenerates the paper's tables and figures and runs
// individual benchmark experiments from the command line.
//
// Usage:
//
//	pybench -list                         # list benchmarks and experiments
//	pybench -exp T2                       # regenerate one table/figure
//	pybench -exp all                      # regenerate everything
//	pybench -bench nbody -mode jit        # run one experiment and summarize
//	pybench -bench nbody -json            # raw per-invocation data as JSON
//	pybench -suite                        # Holm-corrected suite comparison
//	pybench -profile dictstress           # per-opcode execution profile
//	pybench -dis fib                      # bytecode disassembly
//	pybench -exp F3 -csv                  # CSV output (also: -markdown)
//
// Scale/noise knobs: -invocations, -iterations, -trials, -seed, -noise
// {default,quiet,noisy,none}.
//
// Fault-tolerance knobs (supervised execution): -faults {none,light,heavy,
// kind=prob,...}, -retries N, -quorum K, -resume DIR. With -resume, an
// interrupted run picks up where it left off, skipping completed
// invocations; the same seed always reproduces the same fault schedule.
//
// Crash-isolation knobs: -isolate runs every invocation attempt in a
// watchdogged worker subprocess (a crash or hang costs one attempt, never
// the campaign; the sample set is bit-identical to in-process execution);
// -watchdog bounds each attempt's wall time before the child is killed.
//
// Remote execution: -daemon-addr HOST:PORT submits the -bench campaign to
// a pybenchd daemon instead of running it in-process. The daemon executes
// the same controlapi.Execute path this binary uses locally, so the
// sample set is bit-identical either way; progress streams to stderr and
// the rendered table (or -json document) is unchanged.
//
// Observability knobs: -trace FILE writes a Chrome trace-event timeline
// (open in Perfetto or chrome://tracing); -metrics collects harness
// self-telemetry (timer calibration, GC interference, retry/cache
// activity) and prints a snapshot (with -json it rides under the "metrics"
// key); -profile prints a per-line cost attribution, and -collapsed FILE
// additionally writes folded call stacks for flamegraph tools; -version
// prints the producer identification stamped into emitted artifacts.
//
// Exit codes: 0 = success; 1 = finding (-lint diagnostics); 2 = usage;
// 3 = infrastructure failure; 4 = run degraded below quorum.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/client"
	"repro/internal/analysis"
	"repro/internal/controlapi"
	"repro/internal/core"
	"repro/internal/exitcode"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/methodology"
	"repro/internal/metrics"
	"repro/internal/minipy"
	"repro/internal/noise"
	"repro/internal/profile"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/version"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	// The hidden re-exec mode: `pybench -worker` turns this process into a
	// protocol server executing invocation orders from a supervising
	// pybench over stdin/stdout. Handled before flag parsing so it never
	// appears in -help — it is plumbing, not interface.
	if len(os.Args) == 2 && os.Args[1] == "-worker" {
		if err := harness.WorkerMain(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "pybench -worker:", err)
			os.Exit(exitcode.Infra)
		}
		return
	}
	var (
		list        = flag.Bool("list", false, "list benchmarks and experiment ids")
		exp         = flag.String("exp", "", "experiment id (T1..T5, F1..F8, A1..A9) or 'all'")
		bench       = flag.String("bench", "", "run a single benchmark experiment")
		mode        = flag.String("mode", "interp", "engine for -bench: interp or jit")
		invocations = flag.Int("invocations", 0, "invocations per experiment (0 = default)")
		iterations  = flag.Int("iterations", 0, "iterations per invocation (0 = default)")
		trials      = flag.Int("trials", 0, "synthetic trials for T4/F8 (0 = default)")
		seed        = flag.Uint64("seed", 0, "experiment seed (0 = default)")
		noiseName   = flag.String("noise", "default", "noise model: default, quiet, noisy, none")
		csv         = flag.Bool("csv", false, "emit tables as CSV")
		markdown    = flag.Bool("markdown", false, "emit tables as Markdown")
		suite       = flag.Bool("suite", false, "rigorous interp-vs-JIT suite comparison with Holm correction")
		lint        = flag.Bool("lint", false, "statically analyze every workload (CFG, definite assignment, types, liveness, determinism) and exit non-zero on findings")
		jsonOut     = flag.Bool("json", false, "with -bench: dump the raw result (all invocations) as JSON")
		profileName = flag.String("profile", "", "print the per-line and per-opcode cost profile of a benchmark")
		dis         = flag.String("dis", "", "disassemble a benchmark's bytecode")
		faultsSpec  = flag.String("faults", "", "fault injection: none, light, heavy, or kind=prob list (kinds: panic, hang, corrupt, checksum, compile)")
		retries     = flag.Int("retries", 0, "per-invocation retry budget for supervised runs")
		quorum      = flag.Int("quorum", 0, "minimum successful invocations per experiment (0 = all)")
		resume      = flag.String("resume", "", "checkpoint directory: save progress after every invocation and resume interrupted runs")
		traceOut    = flag.String("trace", "", "write a Chrome trace-event JSON timeline of the run to FILE (open in Perfetto)")
		metricsOn   = flag.Bool("metrics", false, "collect harness self-telemetry and print a snapshot (with -json: included under the metrics key)")
		collapsed   = flag.String("collapsed", "", "with -profile: also write folded call stacks to FILE (flamegraph.pl / speedscope format)")
		workers     = flag.Int("workers", 1, "worker shards for -bench/-suite/-exp invocation execution (1 = sequential; the sample set is identical either way)")
		parPolicy   = flag.String("parallel-policy", "guard", "interference-guard policy for -workers > 1: guard (flag contention), fallback (revert to sequential), force (skip probes)")
		optLevel    = flag.Int("opt", 0, "bytecode-optimization level for -bench/-dis: 0 = off, 1 = peephole, 2 = +superinstructions, 3 = +certificate-gated rewrites (changes the simulated opcode stream; distinct experiment arms, see ablations A7/A8)")
		vmTier      = flag.String("vm", "", "execution tier for -bench: reg (register tier, default), stack (escape hatch; sample sets are bit-identical across tiers), or reg-elide (move-elided stream, ablation A9)")
		isolate     = flag.Bool("isolate", false, "run each invocation attempt in a watchdogged worker subprocess (crash isolation; the sample set is bit-identical to in-process execution)")
		watchdog    = flag.Duration("watchdog", 0, "with -isolate: per-attempt deadline before a hung worker is killed (0 = 30s default)")
		daemonAddr  = flag.String("daemon-addr", "", "with -bench: submit the campaign to a pybenchd daemon at HOST:PORT instead of running in-process (sample set is bit-identical)")
		showVersion = flag.Bool("version", false, "print version, Go version, and platform, then exit")
	)
	flag.Usage = usage
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "pybench: unexpected argument %q\n\n", flag.Arg(0))
		flag.Usage()
		os.Exit(exitcode.Usage)
	}

	np, err := noiseByName(*noiseName)
	if err != nil {
		fatal(usageError{err})
	}
	fp, err := faults.Parse(*faultsSpec)
	if err != nil {
		fatal(usageError{err})
	}
	policy, err := harness.ParseParallelPolicy(*parPolicy)
	if err != nil {
		fatal(usageError{err})
	}
	if *resume != "" {
		if err := os.MkdirAll(*resume, 0o755); err != nil {
			fatal(fmt.Errorf("creating checkpoint dir: %w", err))
		}
	}
	cfg := core.Config{
		Seed:           *seed,
		Invocations:    *invocations,
		Iterations:     *iterations,
		Trials:         *trials,
		Noise:          np,
		Retries:        *retries,
		Quorum:         *quorum,
		Faults:         fp,
		CheckpointDir:  *resume,
		Workers:        *workers,
		ParallelPolicy: policy,
		Isolation: harness.IsolationOptions{
			Enabled:  *isolate,
			Watchdog: *watchdog,
		},
	}

	style := renderText
	if *csv {
		style = renderCSV
	}
	if *markdown {
		style = renderMarkdown
	}
	obs := newObservability(*traceOut, *metricsOn)

	switch {
	case *list:
		doList()
	case *profileName != "":
		if err := doProfile(*profileName, *collapsed); err != nil {
			fatal(err)
		}
	case *dis != "":
		if err := doDisassemble(*dis, *optLevel); err != nil {
			fatal(err)
		}
	case *lint:
		if err := doLint(style); err != nil {
			fatal(err)
		}
	case *suite:
		if err := doSuite(cfg, style, obs); err != nil {
			fatal(err)
		}
		if err := obs.finish(os.Stdout, true); err != nil {
			fatal(err)
		}
	case *bench != "":
		// The -bench path is a campaign of one benchmark: the same
		// CampaignSpec a remote client POSTs to pybenchd, executed through
		// the same controlapi.Execute — locally by default, remotely with
		// -daemon-addr. One spec, one execution semantics, two transports.
		spec := controlapi.CampaignSpec{
			Benchmarks:     []string{*bench},
			Mode:           *mode,
			Invocations:    *invocations,
			Iterations:     *iterations,
			Seed:           *seed,
			Noise:          *noiseName,
			Opt:            *optLevel,
			VM:             *vmTier,
			Workers:        *workers,
			ParallelPolicy: *parPolicy,
			Faults:         *faultsSpec,
			Retries:        *retries,
			Quorum:         *quorum,
			Isolate:        *isolate,
			WatchdogMs:     watchdog.Milliseconds(),
		}
		if err := doBench(spec, *resume, *daemonAddr, *jsonOut, obs); err != nil {
			fatal(err)
		}
		if err := obs.finish(os.Stdout, !*jsonOut); err != nil {
			fatal(err)
		}
	case *exp != "":
		if err := doExperiments(*exp, cfg, style); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(exitcode.Usage)
	}
}

// usageError marks a bad-input failure (exit 2 in the taxonomy).
type usageError struct{ error }

// findingError marks a successful run that surfaced gated findings
// (exit 1 in the taxonomy) — -lint diagnostics, not tool failures.
type findingError struct{ error }

// usage is the custom flag.Usage: flags plus the benchmark inventory, so a
// mistyped invocation tells the user what they can actually run.
func usage() {
	out := flag.CommandLine.Output()
	fmt.Fprintf(out, "usage: pybench [flags]\n\nFlags:\n")
	flag.PrintDefaults()
	fmt.Fprintf(out, "\nBenchmarks: %s\n", strings.Join(benchmarkNames(), ", "))
	fmt.Fprintf(out, "Experiments: %v\nRun 'pybench -list' for descriptions.\n", core.ExperimentIDs())
}

// benchmarkNames lists every runnable workload — the control API's
// inventory, which is the CLI's inventory by construction.
func benchmarkNames() []string {
	return controlapi.BenchmarkNames()
}

// unknownBenchmark builds the error for a benchmark name that resolves to
// nothing: non-zero exit with the full inventory, not a bare print.
func unknownBenchmark(name string) error {
	return usageError{fmt.Errorf("unknown benchmark %q; available: %s (run 'pybench -list' for descriptions)",
		name, strings.Join(benchmarkNames(), ", "))}
}

// renderStyle selects the table output format.
type renderStyle int

const (
	renderText renderStyle = iota
	renderCSV
	renderMarkdown
)

func emit(out fmt.Stringer, style renderStyle) {
	if tbl, ok := out.(*report.Table); ok {
		switch style {
		case renderCSV:
			tbl.CSV(os.Stdout)
			return
		case renderMarkdown:
			tbl.Markdown(os.Stdout)
			fmt.Println()
			return
		}
	}
	fmt.Println(out.String())
}

// observability owns the CLI's trace/metrics lifecycle: it builds the
// harness.Observer from the flags, opens the run-level suite span, and at
// exit exports the trace file and prints the metrics snapshot.
type observability struct {
	obs       harness.Observer
	traceFile string
	metricsOn bool
	suiteSpan trace.Span
}

// newObservability wires the requested sinks. The producer string is
// stamped into the trace metadata so artifacts record what emitted them.
func newObservability(traceFile string, metricsOn bool) *observability {
	o := &observability{traceFile: traceFile, metricsOn: metricsOn}
	if traceFile != "" {
		o.obs.Trace = trace.New()
		o.obs.Trace.SetMeta("producer", version.Producer())
	}
	if metricsOn {
		o.obs.Metrics = metrics.NewRegistry()
		metrics.CalibrateTimer(o.obs.Metrics)
	}
	return o
}

// attach hooks the sinks into a runner and opens the suite-level span.
func (o *observability) attach(r *harness.Runner, suiteName string) {
	r.SetObserver(o.obs)
	if o.obs.Trace != nil {
		o.suiteSpan = o.obs.Trace.Begin(trace.CatSuite, suiteName)
	}
}

// finish closes the suite span, writes the trace file, and prints the
// metrics snapshot (text exposition) to w. printMetrics is false in -json
// mode, where the snapshot already rides inside the result JSON and a text
// trailer would corrupt the stream.
func (o *observability) finish(w *os.File, printMetrics bool) error {
	o.suiteSpan.End()
	if o.obs.Trace != nil {
		f, err := os.Create(o.traceFile)
		if err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		if err := o.obs.Trace.Export(f); err != nil {
			//benchlint:allow uncheckederr — cleanup; the Export error wins
			f.Close()
			return fmt.Errorf("writing trace: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("writing trace: %w", err)
		}
		fmt.Fprintf(os.Stderr, "pybench: trace written to %s (%d events)\n",
			o.traceFile, o.obs.Trace.Len())
	}
	if o.metricsOn && printMetrics {
		fmt.Fprintln(w)
		return o.obs.Metrics.Snapshot().WriteText(w)
	}
	return nil
}

// parallelOptions maps the CLI's parallelism config onto the harness
// (Workers <= 1 selects the sequential path).
func parallelOptions(cfg core.Config) harness.ParallelOptions {
	return harness.ParallelOptions{Workers: cfg.Workers, Policy: cfg.ParallelPolicy}
}

// supervisorOptions maps the CLI's supervision config onto the harness
// policy (checkpoint stores are attached per experiment by the callers).
func supervisorOptions(cfg core.Config) harness.SupervisorOptions {
	return harness.SupervisorOptions{
		MaxRetries: cfg.Retries,
		Quorum:     cfg.Quorum,
		Faults:     cfg.Faults,
		FaultSeed:  cfg.FaultSeed,
		Isolation:  cfg.Isolation,
	}
}

// doSuite runs the rigorous methodology across the whole suite with
// family-wise (Holm–Bonferroni) error control, under fault-tolerant
// supervision when configured.
func doSuite(cfg core.Config, style renderStyle, o *observability) error {
	inv, iter := cfg.Invocations, cfg.Iterations
	if inv == 0 {
		inv = 10
	}
	if iter == 0 {
		iter = 30
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 42
	}
	np := cfg.Noise
	if np == (noise.Params{}) {
		np = noise.Default()
	}
	runner := harness.NewRunner()
	o.attach(runner, "suite")
	po := parallelOptions(cfg)
	var names []string
	var baselines, treatments []stats.HierarchicalSample
	var degradedNotes []string
	opts := harness.Options{Invocations: inv, Iterations: iter, Seed: seed, Noise: np}
	for _, wl := range workloads.Suite() {
		var interp, jit *harness.Result
		var err error
		if cfg.Supervised() {
			so := supervisorOptions(cfg)
			if cfg.CheckpointDir != "" {
				// The base store; RunPairParallel derives one journal per arm.
				so.Checkpoint = harness.NewJournalCheckpoint(
					filepath.Join(cfg.CheckpointDir, wl.Name+".ckpt.wal"))
			}
			interp, jit, err = harness.NewSupervisor(runner, so).RunPairParallel(wl, opts, po)
		} else {
			interp, jit, err = runner.RunPairParallel(wl, opts, po)
		}
		if err != nil {
			return err
		}
		names = append(names, wl.Name)
		baselines = append(baselines, interp.Hierarchical())
		treatments = append(treatments, jit.Hierarchical())
		for _, arm := range []*harness.Result{interp, jit} {
			if sv := arm.Supervision; sv != nil && sv.Degraded() {
				degradedNotes = append(degradedNotes,
					fmt.Sprintf("%s/%s: %s", wl.Name, arm.Mode, sv.Summary()))
			}
			if note := arm.Parallelism.Footnote(); note != "" {
				degradedNotes = append(degradedNotes,
					fmt.Sprintf("%s/%s: %s", wl.Name, arm.Mode, note))
			}
		}
	}
	results := methodology.CompareSuite(names, baselines, treatments,
		methodology.Rigorous{Seed: seed}, 0.05)
	t := report.NewTable(
		fmt.Sprintf("Suite comparison: JIT vs interpreter (%d×%d, Holm at α=0.05)", inv, iter),
		"benchmark", "speedup", "CI lo", "CI hi", "p-value", "verdict")
	var speedups []float64
	for _, r := range results {
		t.AddRow(r.Benchmark, r.Speedup, r.CI.Lo, r.CI.Hi, r.PValue, r.Verdict.String())
		speedups = append(speedups, r.Speedup)
	}
	t.AddRow("GEOMEAN", stats.GeoMean(speedups), "", "", "", "")
	t.Caption = "Verdicts are Holm–Bonferroni adjusted: family-wise false-positive rate ≤ 5%."
	if cfg.Supervised() {
		t.AddFootnote("supervised: faults=%s, retries=%d, quorum=%d",
			cfg.Faults, cfg.Retries, cfg.Quorum)
	}
	for _, n := range degradedNotes {
		t.AddFootnote("%s", n)
	}
	emit(t, style)
	return nil
}

// fatal prints the error and exits with its taxonomy code: usage errors
// (including invalid campaign specs) exit 2, gated findings 1, a run
// degraded below quorum 4, and everything else — I/O, environment,
// subprocess plumbing — 3 (infrastructure). Errors that carry their own
// mapping (daemon API errors, remote campaign outcomes) exit with it.
func fatal(err error) {
	fmt.Fprintln(os.Stderr, "pybench:", err)
	var ue usageError
	var fe findingError
	var se *controlapi.SpecError
	var ec interface{ ExitCode() int }
	switch {
	case errors.As(err, &ue), errors.As(err, &se):
		os.Exit(exitcode.Usage)
	case errors.As(err, &fe):
		os.Exit(exitcode.Finding)
	case errors.Is(err, harness.ErrQuorum):
		os.Exit(exitcode.Degraded)
	case errors.As(err, &ec):
		os.Exit(ec.ExitCode())
	}
	os.Exit(exitcode.Infra)
}

// noiseByName delegates to the control API's single name→model mapping,
// so the CLI and a remote submission can never disagree about what
// "quiet" means.
func noiseByName(name string) (noise.Params, error) {
	return controlapi.NoiseByName(name)
}

func doList() {
	t := report.NewTable("Benchmarks (canonical suite)", "name", "class", "description")
	for _, b := range workloads.Suite() {
		t.AddRow(b.Name, string(b.Class), b.Description)
	}
	fmt.Print(t.String())
	fmt.Println()
	x := report.NewTable("Extended workloads (usable with -bench/-profile/-dis)",
		"name", "class", "description")
	for _, b := range workloads.Extended() {
		x.AddRow(b.Name, string(b.Class), b.Description)
	}
	fmt.Print(x.String())
	fmt.Println()
	fmt.Println("Experiments:", core.ExperimentIDs())
}

func doExperiments(id string, cfg core.Config, style renderStyle) error {
	engine := core.New(cfg)
	ids := []string{id}
	if id == "all" {
		ids = core.ExperimentIDs()
	}
	for _, x := range ids {
		out, err := engine.Experiment(x)
		if err != nil {
			return err
		}
		emit(out, style)
	}
	return nil
}

// doBench runs a single-benchmark campaign through the shared
// controlapi.Execute path — in-process by default (supervision with the
// zero policy is free, so -bench always runs supervised and always
// reports its effective N), or submitted to a pybenchd daemon when
// daemonAddr is set. Both routes yield the same *harness.Result by
// construction; rendering is identical.
func doBench(spec controlapi.CampaignSpec, checkpointDir, daemonAddr string, jsonOut bool, o *observability) error {
	spec = spec.Normalize()
	if err := spec.Validate(); err != nil {
		return err
	}
	var res *harness.Result
	if daemonAddr != "" {
		r, err := runRemote(daemonAddr, spec)
		if err != nil {
			return err
		}
		res = r
	} else {
		runner := harness.NewRunner()
		o.attach(runner, spec.Benchmarks[0]+"/"+spec.Mode)
		results, err := controlapi.Execute(spec, controlapi.ExecOptions{
			Runner:        runner,
			CheckpointDir: checkpointDir,
		})
		if err != nil {
			if n := len(results); n > 0 && results[n-1].Supervision != nil {
				fmt.Fprintln(os.Stderr, "pybench:", results[n-1].Supervision.Summary())
			}
			return err
		}
		res = results[0]
	}
	if jsonOut {
		return res.WriteJSON(os.Stdout)
	}
	return renderBenchResult(res, spec)
}

// runRemote submits the campaign to a pybenchd daemon, streams its
// progress to stderr, and returns the final result — the same value the
// local path computes, fetched over the wire.
func runRemote(addr string, spec controlapi.CampaignSpec) (*harness.Result, error) {
	cl := client.New(addr, client.WithTenant(spec.Tenant))
	ctx := context.Background()
	st, err := cl.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(os.Stderr, "pybench: campaign %s accepted by daemon %s\n", st.ID, addr)
	final, err := cl.Wait(ctx, st.ID, func(ev client.Event) {
		if ev.Type != controlapi.EventBenchmark {
			return
		}
		var bp controlapi.BenchmarkProgress
		if json.Unmarshal(ev.Data, &bp) != nil { //benchlint:allow uncheckederr — progress display only
			return
		}
		verb := "running"
		if bp.Done {
			verb = "finished"
		}
		fmt.Fprintf(os.Stderr, "pybench: daemon: %s %s (%d/%d)\n",
			bp.Benchmark, verb, bp.Index+1, bp.Total)
	})
	if err != nil {
		// A degraded/failed remote campaign still carries its partial
		// supervision report; surface it like the local path does.
		var ce *client.CampaignError
		if errors.As(err, &ce) && final != nil {
			if n := len(final.Results); n > 0 && final.Results[n-1].Supervision != nil {
				fmt.Fprintln(os.Stderr, "pybench:", final.Results[n-1].Supervision.Summary())
			}
		}
		return nil, err
	}
	if len(final.Results) == 0 {
		return nil, fmt.Errorf("daemon returned no results for campaign %s", st.ID)
	}
	return final.Results[0], nil
}

// renderBenchResult prints the -bench summary table from a campaign
// result, local or remote.
func renderBenchResult(res *harness.Result, spec controlapi.CampaignSpec) error {
	hs, srep := stats.Sanitize(res.Hierarchical())
	means := hs.InvocationMeans()
	ci := stats.KaliberaMeanCI(hs, 0.95)
	vd := stats.DecomposeVariance(hs)
	rep := methodology.ClassifyExperiment(hs)
	sv := res.Supervision

	t := report.NewTable(fmt.Sprintf("%s / %s (%d×%d, seed %d)",
		spec.Benchmarks[0], spec.Mode, spec.Invocations, spec.Iterations, spec.Seed),
		"metric", "value")
	t.AddRow("mean (ms)", 1e3*stats.Mean(means))
	t.AddRow("median (ms)", 1e3*stats.Median(means))
	t.AddRow("CoV invocations (%)", 100*stats.CoV(means))
	t.AddRow("95% CI (ms)", fmt.Sprintf("[%s, %s]",
		report.FormatFloat(1e3*ci.Lo), report.FormatFloat(1e3*ci.Hi)))
	t.AddRow("between-invocation var frac (%)", 100*vd.BetweenFraction())
	t.AddRow("steady-state class", rep.Class.String())
	t.AddRow("mean steady start (iter)", rep.MeanSteadyStart)
	t.AddRow("effective N", fmt.Sprintf("%d/%d", hs.EffectiveInvocations(), sv.Planned))
	t.AddRow("retries / dropped / quarantined",
		fmt.Sprintf("%d / %d / %d", sv.Retries, sv.Dropped, sv.QuarantinedSamples))
	if len(res.Invocations) > 0 {
		t.AddRow("checksum", res.Invocations[0].Checksum)
	}
	if sv.Degraded() || sv.InjectedFaults > 0 {
		t.AddFootnote("%s", sv.Summary())
	}
	if note := res.Parallelism.Footnote(); note != "" {
		t.AddFootnote("%s", note)
	}
	if !srep.Clean() {
		t.AddFootnote("analysis sanitized: %d samples quarantined, %d invocations dropped",
			srep.QuarantinedSamples, srep.DroppedInvocations)
	}
	fmt.Print(t.String())
	return nil
}

// doLint statically analyzes every shipped workload (canonical suite plus
// extended set) and prints the per-benchmark digest: CFG size, dead code,
// type-inference coverage, and the determinism verdict. Any error-severity
// finding fails the command, so `pybench -lint` is the suite's pre-run
// validation gate in script form.
func doLint(style renderStyle) error {
	all := append(append([]workloads.Benchmark{}, workloads.Suite()...),
		workloads.Extended()...)
	t := report.NewTable("Workload static analysis",
		"benchmark", "funcs", "blocks", "instrs", "dead", "unreach",
		"typed %", "deterministic", "verdict")
	findings := 0
	for _, b := range all {
		rep, err := b.Analyze()
		if err != nil {
			return err
		}
		s := rep.Summarize()
		det := "yes"
		if !s.Certificate.Determinism.Certified {
			det = "NO"
		} else if s.Certificate.Determinism.UsesIO {
			det = "yes (io)"
		}
		verdict := "ok"
		if s.Errors > 0 {
			verdict = fmt.Sprintf("%d error(s)", s.Errors)
		} else if s.Warnings > 0 {
			verdict = fmt.Sprintf("%d warning(s)", s.Warnings)
		}
		t.AddRow(b.Name, s.Functions, s.Blocks, s.Instructions, s.DeadStores,
			s.UnreachableInstrs, fmt.Sprintf("%.1f", s.TypedInstrPct), det, verdict)
		for _, d := range rep.Diagnostics {
			if d.Severity >= analysis.Warning {
				findings++
				fmt.Fprintf(os.Stderr, "pybench: %s: %s\n", b.Name, d)
			}
		}
		if !s.Certificate.Determinism.Certified {
			findings++
		}
	}
	t.Caption = "typed % = reachable instructions whose operand types the lattice resolved."
	emit(t, style)
	if findings > 0 {
		return findingError{fmt.Errorf("%d finding(s) across the workload suite", findings)}
	}
	return nil
}

// doProfile runs one run() call of a benchmark under the VM profiler and
// prints per-line, per-function, and per-opcode cost attribution. The
// profiler consumes the engine's own cost accounting, so its total is
// checked against the measured counter delta and the reconciliation is
// reported in the caption (exact for the unprobed interpreter).
func doProfile(name, collapsedPath string) error {
	b, ok := workloads.ByName(name)
	if !ok {
		return unknownBenchmark(name)
	}
	code, err := b.Compile()
	if err != nil {
		return err
	}
	prof := profile.New()
	engine := vm.New(vm.Config{Tracer: prof})
	if _, err := engine.RunModule(code); err != nil {
		return err
	}
	prof.Reset() // profile the measured iteration only, not module setup
	before := engine.CountersSnapshot()
	if _, err := engine.CallGlobal("run"); err != nil {
		return err
	}
	delta := engine.CountersSnapshot().Sub(before)
	ops, cycles := prof.Total()

	t := report.NewTable(fmt.Sprintf("Line profile: %s (one run() call, interpreter)", name),
		"line", "cycles", "% of cycles", "ops", "source")
	for _, al := range prof.Annotate(b.Source) {
		t.AddRow(al.Line, al.Cycles,
			fmt.Sprintf("%.1f", 100*float64(al.Cycles)/float64(cycles)),
			al.Ops, al.Source)
	}
	recon := 100.0
	if delta.Cycles > 0 {
		recon = 100 * float64(cycles) / float64(delta.Cycles)
	}
	t.Caption = fmt.Sprintf("%d ops, %d attributed cycles; engine measured %d cycles (%.2f%% reconciled).",
		ops, cycles, delta.Cycles, recon)
	fmt.Print(t.String())
	fmt.Println()

	ft := report.NewTable("By function", "function", "cycles", "% of cycles", "ops")
	for _, fc := range prof.FuncCosts() {
		ft.AddRow(fc.Func, fc.Cycles,
			fmt.Sprintf("%.1f", 100*float64(fc.Cycles)/float64(cycles)), fc.Ops)
	}
	fmt.Print(ft.String())
	fmt.Println()

	ot := report.NewTable("By opcode (top 15)", "opcode", "count", "cycles", "% of cycles")
	for i, oc := range prof.OpCosts() {
		if i == 15 {
			break
		}
		ot.AddRow(oc.Op.String(), oc.Count, oc.Cycles,
			fmt.Sprintf("%.1f", 100*float64(oc.Cycles)/float64(cycles)))
	}
	fmt.Print(ot.String())

	if collapsedPath != "" {
		f, err := os.Create(collapsedPath)
		if err != nil {
			return fmt.Errorf("writing collapsed stacks: %w", err)
		}
		if err := prof.WriteCollapsed(f); err != nil {
			//benchlint:allow uncheckederr — cleanup; the write error wins
			f.Close()
			return fmt.Errorf("writing collapsed stacks: %w", err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("writing collapsed stacks: %w", err)
		}
		fmt.Fprintf(os.Stderr, "pybench: collapsed stacks written to %s (%d unique stacks)\n",
			collapsedPath, len(prof.Stacks()))
	}
	return nil
}

// doDisassemble prints a benchmark's compiled bytecode.
func doDisassemble(name string, opt int) error {
	b, ok := workloads.ByName(name)
	if !ok {
		return unknownBenchmark(name)
	}
	code, err := b.Compile()
	if err != nil {
		return err
	}
	if opt > 0 {
		code, err = minipy.Optimize(code, opt, analysis.OptimizationFacts(code))
		if err != nil {
			return err
		}
	}
	fmt.Print(code.Disassemble())
	return nil
}
