// Command benchchaos is the chaos soak driver: it runs a benchmark
// campaign under a seeded storm of environment faults — worker kills,
// stalled children reaped by the watchdog, torn and corrupted journal
// writes, full disks, and deliberate supervisor crashes with
// resume-from-journal — and asserts the crash-only contract: the final
// merged sample set is bit-identical to the same campaign executed
// in-process on reliable storage with no crashes.
//
// The reference run realizes the same deterministic fault schedule (fates
// are a pure function of the seed), so the comparison isolates exactly
// what chaos is allowed to change: nothing.
//
// Usage:
//
//	benchchaos -bench fib -invocations 8 -iterations 5 -seed 42
//	benchchaos -faults 'kill=0.3,stall=0.1,torn=0.2' -crashes 3 -workers 4
//	benchchaos -runs 5 -seed 100   # five rounds, seeds 100..104
//
// Exit codes follow the repository taxonomy: 0 = chaos was invisible;
// 1 = divergence (the crash machinery changed the science); 2 = usage;
// 3 = infrastructure failure; 4 = the chaos run degraded below quorum.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"repro/internal/exitcode"
	"repro/internal/faults"
	"repro/internal/harness"
	"repro/internal/noise"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/wal"
	"repro/internal/workloads"
)

func main() {
	// Hidden re-exec mode: the soak's isolated workers are this binary.
	if len(os.Args) == 2 && os.Args[1] == "-worker" {
		if err := harness.WorkerMain(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "benchchaos -worker:", err)
			os.Exit(exitcode.Infra)
		}
		return
	}
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

type config struct {
	bench       string
	mode        vm.Mode
	invocations int
	iterations  int
	seed        uint64
	runs        int
	retries     int
	crashes     int
	workers     int
	faults      faults.Params
	isolate     bool
	watchdog    time.Duration
	dir         string
	verbose     bool
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchchaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		bench       = fs.String("bench", "fib", "benchmark to soak")
		modeName    = fs.String("mode", "interp", "engine: interp or jit")
		invocations = fs.Int("invocations", 8, "invocations per campaign")
		iterations  = fs.Int("iterations", 5, "iterations per invocation")
		seed        = fs.Uint64("seed", 42, "campaign seed (round i uses seed+i)")
		runs        = fs.Int("runs", 1, "independent soak rounds")
		retries     = fs.Int("retries", 8, "per-invocation retry budget")
		crashes     = fs.Int("crashes", 2, "deliberate supervisor crashes (kill -9 simulations) per round")
		workers     = fs.Int("workers", 1, "parallel shards for the chaos run")
		faultsSpec  = fs.String("faults", "chaos", "fault model: chaos, light, heavy, none, or kind=prob list")
		isolate     = fs.Bool("isolate", true, "run chaos invocations in watchdogged worker subprocesses")
		watchdog    = fs.Duration("watchdog", 2*time.Second, "SIGKILL a worker that is silent this long (stalled children hold a slot until reaped)")
		dir         = fs.String("dir", "", "journal directory (default: a temp dir, removed on success)")
		verbose     = fs.Bool("v", false, "print per-round supervision detail")
	)
	if err := fs.Parse(args); err != nil {
		return exitcode.Usage
	}
	if fs.NArg() > 0 {
		fmt.Fprintf(stderr, "benchchaos: unexpected argument %q\n", fs.Arg(0))
		return exitcode.Usage
	}
	cfg := config{
		bench: *bench, invocations: *invocations, iterations: *iterations,
		seed: *seed, runs: *runs, retries: *retries, crashes: *crashes,
		workers: *workers, isolate: *isolate, watchdog: *watchdog, dir: *dir, verbose: *verbose,
	}
	switch *modeName {
	case "interp":
		cfg.mode = vm.ModeInterp
	case "jit":
		cfg.mode = vm.ModeJIT
	default:
		fmt.Fprintf(stderr, "benchchaos: unknown mode %q\n", *modeName)
		return exitcode.Usage
	}
	fp, err := faults.Parse(*faultsSpec)
	if err != nil {
		fmt.Fprintln(stderr, "benchchaos:", err)
		return exitcode.Usage
	}
	cfg.faults = fp
	if _, ok := workloads.ByName(cfg.bench); !ok {
		fmt.Fprintf(stderr, "benchchaos: unknown benchmark %q\n", cfg.bench)
		return exitcode.Usage
	}
	if cfg.dir == "" {
		tmp, err := os.MkdirTemp("", "benchchaos-")
		if err != nil {
			fmt.Fprintln(stderr, "benchchaos:", err)
			return exitcode.Infra
		}
		//benchlint:allow uncheckederr — best-effort temp-dir cleanup
		defer os.RemoveAll(tmp)
		cfg.dir = tmp
	}

	worst := exitcode.OK
	for round := 0; round < cfg.runs; round++ {
		rc := cfg
		rc.seed = cfg.seed + uint64(round)
		code := soakRound(rc, round, stdout, stderr)
		if code > worst {
			worst = code
		}
	}
	if worst == exitcode.OK {
		fmt.Fprintf(stdout, "benchchaos: PASS: %d round(s), chaos left no fingerprint on the sample set\n", cfg.runs)
	}
	return worst
}

// soakRound executes one reference + chaos campaign pair and compares.
func soakRound(cfg config, round int, stdout, stderr io.Writer) int {
	b, _ := workloads.ByName(cfg.bench)
	opts := harness.Options{
		Mode:        cfg.mode,
		Invocations: cfg.invocations,
		Iterations:  cfg.iterations,
		Seed:        cfg.seed,
		Noise:       noise.Default(),
	}
	base := harness.SupervisorOptions{
		MaxRetries: cfg.retries,
		Quorum:     1,
		Faults:     cfg.faults,
	}

	// Reference: same fault schedule, in-process, reliable storage, no
	// crashes. This is the campaign's ground truth.
	ref, err := harness.NewSupervisor(harness.NewRunner(), base).Run(b, opts)
	if err != nil {
		fmt.Fprintf(stderr, "benchchaos: round %d: reference run failed: %v\n", round, err)
		return exitcode.Infra
	}

	// Chaos: subprocess isolation, journal on a fault-injecting filesystem,
	// and deliberate crash points with journal resume in between.
	journal := filepath.Join(cfg.dir, fmt.Sprintf("round%d.wal", round))
	chaosFS := faults.NewChaosFS(wal.OSFS{}, cfg.faults.Storage(), cfg.seed)
	iso := harness.IsolationOptions{}
	if cfg.isolate {
		exe, err := os.Executable()
		if err != nil {
			fmt.Fprintf(stderr, "benchchaos: round %d: %v\n", round, err)
			return exitcode.Infra
		}
		iso = harness.IsolationOptions{Enabled: true, Command: []string{exe, "-worker"}, Watchdog: cfg.watchdog}
	}
	// Crash points are drawn from the campaign seed: each segment completes
	// a deterministic number of fresh slots, then the supervisor aborts as
	// a kill -9 would, and the next segment resumes from the journal.
	crashRNG := stats.NewRNG(cfg.seed).Split(0xC4A5)
	var res *harness.Result
	segments := 0
	for {
		store := harness.NewJournalCheckpointFS(chaosFS, journal)
		so := base
		so.Isolation = iso
		so.Checkpoint = store
		if segments < cfg.crashes {
			so.CrashAfter = 1 + int(crashRNG.Uint64()%uint64(maxInt(1, cfg.invocations/2)))
		}
		res, err = harness.NewSupervisor(harness.NewRunner(), so).
			RunParallel(b, opts, harness.ParallelOptions{Workers: cfg.workers, Policy: harness.PolicyForce})
		//benchlint:allow uncheckederr — segments crash by design; recovery replays the journal
		store.Close()
		segments++
		if errors.Is(err, harness.ErrCrashPoint) {
			if cfg.verbose {
				fmt.Fprintf(stdout, "benchchaos: round %d: segment %d crashed on schedule, resuming from journal\n", round, segments)
			}
			continue
		}
		break
	}
	switch {
	case errors.Is(err, harness.ErrQuorum):
		fmt.Fprintf(stderr, "benchchaos: round %d: DEGRADED below quorum: %v\n", round, err)
		if res != nil && res.Supervision != nil {
			fmt.Fprintf(stderr, "benchchaos: round %d: %s\n", round, res.Supervision.Summary())
		}
		return exitcode.Degraded
	case err != nil:
		fmt.Fprintf(stderr, "benchchaos: round %d: chaos run failed: %v\n", round, err)
		return exitcode.Infra
	}

	sup := res.Supervision
	if cfg.verbose {
		fmt.Fprintf(stdout, "benchchaos: round %d: %d segment(s); %s\n", round, segments, sup.Summary())
		for _, rec := range chaosFS.Injected() {
			fmt.Fprintf(stdout, "benchchaos: round %d: storage fault: %s at write %d (%s)\n",
				round, rec.Kind, rec.Write, rec.Detail)
		}
	}
	if code := compare(ref, res, round, stdout, stderr); code != exitcode.OK {
		return code
	}
	activity := sup.WorkerKills + sup.Retries + sup.CheckpointErrors + len(chaosFS.Injected()) + (segments - 1)
	fmt.Fprintf(stdout,
		"benchchaos: round %d (seed %d): PASS: %d invocations identical through %d crash(es), %d worker kill(s), %d retry(ies), %d storage fault(s), %d checkpoint error(s)\n",
		round, cfg.seed, len(res.Invocations), segments-1, sup.WorkerKills, sup.Retries,
		len(chaosFS.Injected()), sup.CheckpointErrors)
	if activity == 0 && cfg.faults.Enabled() {
		fmt.Fprintf(stdout, "benchchaos: round %d: note: schedule injected nothing; raise probabilities or invocations for a harder soak\n", round)
	}
	return exitcode.OK
}

// compare asserts the chaos result carries exactly the reference's sample
// set: the same surviving slots, bit-identical measurements. Dropped slots
// (possible when the schedule exhausts a retry budget) must be the same
// slots in both runs — fates are seed-determined, so a divergence means the
// environment machinery leaked into the science.
func compare(ref, chaos *harness.Result, round int, stdout, stderr io.Writer) int {
	rs, cs := survivors(ref), survivors(chaos)
	if !reflect.DeepEqual(rs, cs) {
		fmt.Fprintf(stderr, "benchchaos: round %d: FAIL: surviving slots differ: reference %v vs chaos %v\n",
			round, rs, cs)
		return exitcode.Finding
	}
	if len(ref.Invocations) != len(chaos.Invocations) {
		fmt.Fprintf(stderr, "benchchaos: round %d: FAIL: invocation counts differ: %d vs %d\n",
			round, len(ref.Invocations), len(chaos.Invocations))
		return exitcode.Finding
	}
	for i := range ref.Invocations {
		ri, ci := ref.Invocations[i], chaos.Invocations[i]
		if !reflect.DeepEqual(ri.TimesSec, ci.TimesSec) {
			fmt.Fprintf(stderr, "benchchaos: round %d: FAIL: slot %d sample vectors differ\n", round, rs[i])
			return exitcode.Finding
		}
		if ri.Checksum != ci.Checksum {
			fmt.Fprintf(stderr, "benchchaos: round %d: FAIL: slot %d checksums differ: %s vs %s\n",
				round, rs[i], ri.Checksum, ci.Checksum)
			return exitcode.Finding
		}
	}
	if dropped := ref.Supervision.Dropped; dropped > 0 {
		fmt.Fprintf(stdout, "benchchaos: round %d: note: %d slot(s) dropped by the fault schedule in both runs (footnoted degradation, not divergence)\n",
			round, dropped)
	}
	return exitcode.OK
}

// survivors lists the slot indices that contributed samples, in order.
func survivors(res *harness.Result) []int {
	var idx []int
	for _, lg := range res.Supervision.Log {
		if lg.Status != harness.StatusDropped {
			idx = append(idx, lg.Index)
		}
	}
	return idx
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
