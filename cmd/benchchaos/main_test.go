package main

import (
	"bytes"
	"fmt"
	"os"
	"strings"
	"testing"

	"repro/internal/harness"
)

// TestMain lets the test binary serve as its own isolated worker: the soak
// spawns os.Executable() with a single -worker argument, exactly like the
// installed benchchaos binary does.
func TestMain(m *testing.M) {
	if len(os.Args) == 2 && os.Args[1] == "-worker" {
		if err := harness.WorkerMain(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(3)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

func soak(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(append(args, "-dir", t.TempDir()), &out, &errb)
	return code, out.String(), errb.String()
}

func TestCleanSoakPasses(t *testing.T) {
	code, stdout, stderr := soak(t,
		"-bench", "fib", "-invocations", "4", "-iterations", "3",
		"-seed", "5", "-crashes", "1", "-faults", "none")
	if code != 0 {
		t.Fatalf("clean soak exited %d\n%s%s", code, stdout, stderr)
	}
	if !strings.Contains(stdout, "PASS") {
		t.Fatalf("missing PASS verdict:\n%s", stdout)
	}
}

func TestFaultySoakStaysIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker subprocesses")
	}
	code, stdout, stderr := soak(t,
		"-bench", "fib", "-invocations", "6", "-iterations", "3",
		"-seed", "7", "-crashes", "2", "-workers", "2", "-retries", "8",
		"-faults", "kill=0.3,torn=0.2,badrecord=0.1", "-v")
	if code != 0 {
		t.Fatalf("faulty soak exited %d\n%s%s", code, stdout, stderr)
	}
	// The schedule at this seed must actually inject something, or the
	// test proves nothing; "invisible chaos" requires chaos.
	if strings.Contains(stdout, "schedule injected nothing") {
		t.Fatalf("fault schedule was a no-op at this seed:\n%s", stdout)
	}
	if !strings.Contains(stdout, "identical through") {
		t.Fatalf("missing invariant report:\n%s", stdout)
	}
}

func TestInProcessSoakPasses(t *testing.T) {
	code, stdout, stderr := soak(t,
		"-bench", "fib", "-invocations", "4", "-iterations", "3",
		"-seed", "11", "-crashes", "1", "-isolate=false",
		"-faults", "panic=0.2,torn=0.2")
	if code != 0 {
		t.Fatalf("in-process soak exited %d\n%s%s", code, stdout, stderr)
	}
}

func TestUsageErrors(t *testing.T) {
	cases := [][]string{
		{"-bench", "no-such-benchmark"},
		{"-mode", "turbo"},
		{"-faults", "badkind=0.5"},
		{"positional-arg"},
	}
	for _, args := range cases {
		if code, _, _ := soak(t, args...); code != 2 {
			t.Errorf("args %v exited %d, want 2 (usage)", args, code)
		}
	}
}
