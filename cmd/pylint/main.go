// Command pylint statically analyzes MiniPy programs: control-flow and
// dominator construction, definite-assignment checking, type-lattice
// inference, liveness/dead-store detection, and the determinism/purity
// audit — the same passes the harness runs before measuring a workload,
// exposed as a standalone linter for sources outside the shipped suite.
//
// Usage:
//
//	pylint prog.py [more.py ...]   # lint source files
//	pylint -bench fib              # lint a shipped benchmark by name
//	pylint -all                    # lint every shipped benchmark
//	pylint -strict prog.py         # warnings also fail (exit 1)
//	pylint -cfg prog.py            # additionally dump each function's CFG
//
// Exit status follows the repository taxonomy: 0 clean, 1 findings
// (errors; with -strict also warnings), 2 usage, 3 unreadable input.
// Diagnostics are positioned:
//
//	prog.py: f:3: error[use-before-def]: variable "x" is used before any assignment
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
	"repro/internal/exitcode"
	"repro/internal/minipy"
	"repro/internal/workloads"
)

func main() {
	var (
		benchName = flag.String("bench", "", "lint a shipped benchmark by name instead of files")
		all       = flag.Bool("all", false, "lint every shipped benchmark (canonical + extended)")
		strict    = flag.Bool("strict", false, "treat warnings as failures")
		dumpCFG   = flag.Bool("cfg", false, "dump each function's control-flow graph")
		quiet     = flag.Bool("q", false, "suppress the per-target summary line, print findings only")
	)
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: pylint [flags] [file.py ...]\n\nFlags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	type target struct {
		name string
		src  string
	}
	var targets []target
	switch {
	case *all:
		for _, b := range append(workloads.Suite(), workloads.Extended()...) {
			targets = append(targets, target{b.Name, b.Source})
		}
	case *benchName != "":
		b, ok := workloads.ByName(*benchName)
		if !ok {
			fmt.Fprintf(os.Stderr, "pylint: unknown benchmark %q\n", *benchName)
			os.Exit(exitcode.Usage)
		}
		targets = append(targets, target{b.Name, b.Source})
	default:
		if flag.NArg() == 0 {
			flag.Usage()
			os.Exit(exitcode.Usage)
		}
		for _, path := range flag.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "pylint: %v\n", err)
				os.Exit(exitcode.Infra)
			}
			targets = append(targets, target{path, string(data)})
		}
	}

	failed := false
	for _, tg := range targets {
		if lintOne(tg.name, tg.src, *strict, *dumpCFG, *quiet) {
			failed = true
		}
	}
	if failed {
		os.Exit(exitcode.Finding)
	}
}

// lintOne analyzes a single program and prints its findings; the return
// value reports whether the target fails under the chosen strictness.
func lintOne(name, src string, strict, dumpCFG, quiet bool) (failed bool) {
	code, err := minipy.CompileSource(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		return true
	}
	rep, err := analysis.Analyze(code)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
		return true
	}
	for _, d := range rep.Diagnostics {
		fmt.Printf("%s: %s\n", name, d)
	}
	if dumpCFG {
		for _, f := range rep.Funcs {
			fmt.Print(f.Graph.String())
		}
	}
	s := rep.Summarize()
	if !quiet {
		det := "deterministic"
		if !s.Determinism.Certified {
			det = fmt.Sprintf("NOT certified (unresolved: %v)",
				s.Determinism.UnresolvedGlobals)
		} else if s.Determinism.UsesIO {
			det = "deterministic (uses io)"
		}
		fmt.Printf("%s: %d funcs, %d blocks, %d instrs, %.1f%% typed, %d error(s), %d warning(s), %s\n",
			name, s.Functions, s.Blocks, s.Instructions, s.TypedInstrPct,
			s.Errors, s.Warnings, det)
	}
	if s.Errors > 0 {
		return true
	}
	if strict && (s.Warnings > 0 || !s.Determinism.Certified) {
		return true
	}
	return false
}
