// Command pylint statically analyzes MiniPy programs: control-flow and
// dominator construction, definite-assignment checking, type-lattice
// inference, liveness/dead-store detection, the determinism/purity audit,
// and the interprocedural certificate (call graph, intervals, escape,
// effects, step bound) — the same passes the harness runs before measuring
// a workload, exposed as a standalone linter for sources outside the
// shipped suite.
//
// Usage:
//
//	pylint prog.py [more.py ...]   # lint source files
//	pylint -bench fib              # lint a shipped benchmark by name
//	pylint -all                    # lint every shipped benchmark
//	pylint -strict prog.py         # warnings also fail (exit 1)
//	pylint -cfg prog.py            # additionally dump each function's CFG
//	pylint -facts prog.py          # dump the analysis certificate as JSON
//
// Exit status follows the repository taxonomy (internal/exitcode): 0 clean,
// 1 findings (errors; with -strict also warnings), 2 usage, 3 unreadable
// input. Diagnostics are positioned:
//
//	prog.py: f:3: error[use-before-def]: variable "x" is used before any assignment
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/analysis"
	"repro/internal/exitcode"
	"repro/internal/minipy"
	"repro/internal/workloads"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options are the resolved command-line flags for one invocation.
type options struct {
	strict  bool
	dumpCFG bool
	facts   bool
	quiet   bool
}

// run is the whole command behind an exit code; main only maps it onto
// os.Exit. Keeping every path — flag errors, unknown benchmarks,
// unreadable files, findings — inside one function is what lets the unit
// tests drive the full exit-status taxonomy without spawning a process.
func run(args []string, stdout, stderr io.Writer) int {
	fl := flag.NewFlagSet("pylint", flag.ContinueOnError)
	fl.SetOutput(stderr)
	var (
		benchName = fl.String("bench", "", "lint a shipped benchmark by name instead of files")
		all       = fl.Bool("all", false, "lint every shipped benchmark (canonical + extended)")
		opts      options
	)
	fl.BoolVar(&opts.strict, "strict", false, "treat warnings as failures")
	fl.BoolVar(&opts.dumpCFG, "cfg", false, "dump each function's control-flow graph")
	fl.BoolVar(&opts.facts, "facts", false, "dump each target's analysis certificate as JSON")
	fl.BoolVar(&opts.quiet, "q", false, "suppress the per-target summary line, print findings only")
	fl.Usage = func() {
		fmt.Fprintf(fl.Output(), "usage: pylint [flags] [file.py ...]\n\nFlags:\n")
		fl.PrintDefaults()
	}
	if err := fl.Parse(args); err != nil {
		return exitcode.Usage
	}

	type target struct {
		name string
		src  string
	}
	var targets []target
	switch {
	case *all:
		for _, b := range append(workloads.Suite(), workloads.Extended()...) {
			targets = append(targets, target{b.Name, b.Source})
		}
	case *benchName != "":
		b, ok := workloads.ByName(*benchName)
		if !ok {
			fmt.Fprintf(stderr, "pylint: unknown benchmark %q\n", *benchName)
			return exitcode.Usage
		}
		targets = append(targets, target{b.Name, b.Source})
	default:
		if fl.NArg() == 0 {
			fl.Usage()
			return exitcode.Usage
		}
		for _, path := range fl.Args() {
			data, err := os.ReadFile(path)
			if err != nil {
				fmt.Fprintf(stderr, "pylint: %v\n", err)
				return exitcode.Infra
			}
			targets = append(targets, target{path, string(data)})
		}
	}

	failed := false
	for _, tg := range targets {
		if lintOne(tg.name, tg.src, opts, stdout, stderr) {
			failed = true
		}
	}
	if failed {
		return exitcode.Finding
	}
	return exitcode.OK
}

// lintOne analyzes a single program and prints its findings; the return
// value reports whether the target fails under the chosen strictness.
func lintOne(name, src string, opts options, stdout, stderr io.Writer) (failed bool) {
	code, err := minipy.CompileSource(src)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", name, err)
		return true
	}
	rep, err := analysis.Analyze(code)
	if err != nil {
		fmt.Fprintf(stderr, "%s: %v\n", name, err)
		return true
	}
	for _, d := range rep.Diagnostics {
		fmt.Fprintf(stdout, "%s: %s\n", name, d)
	}
	if opts.dumpCFG {
		for _, f := range rep.Funcs {
			fmt.Fprint(stdout, f.Graph.String())
		}
	}
	if opts.facts {
		buf, err := json.MarshalIndent(rep.Certificate, "", "  ")
		if err != nil {
			fmt.Fprintf(stderr, "%s: encoding certificate: %v\n", name, err)
			return true
		}
		fmt.Fprintf(stdout, "%s\n", buf)
	}
	s := rep.Summarize()
	if !opts.quiet {
		det := "deterministic"
		if !s.Certificate.Determinism.Certified {
			det = fmt.Sprintf("NOT certified (unresolved: %v)",
				s.Certificate.Determinism.UnresolvedGlobals)
		} else if s.Certificate.Determinism.UsesIO {
			det = "deterministic (uses io)"
		}
		fmt.Fprintf(stdout, "%s: %d funcs, %d blocks, %d instrs, %.1f%% typed, %d error(s), %d warning(s), %s\n",
			name, s.Functions, s.Blocks, s.Instructions, s.TypedInstrPct,
			s.Errors, s.Warnings, det)
	}
	if s.Errors > 0 {
		return true
	}
	if opts.strict && (s.Warnings > 0 || !s.Certificate.Determinism.Certified) {
		return true
	}
	return false
}
