package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// writeFiles materializes named sources under a temp dir and returns it.
func writeFiles(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

const cleanSrc = "def run():\n    return 40 + 2\n"

// deadStoreSrc carries a warning-severity finding (the first assignment to
// x is dead) but no errors: clean by default, a finding under -strict.
const deadStoreSrc = "def run():\n    x = 1\n    x = 2\n    return x\n"

// useBeforeDefSrc reads local x before any assignment reaches the use —
// an error-severity use-before-def diagnostic.
const useBeforeDefSrc = "def run():\n    y = x\n    x = 1\n    return y\n"

// TestExitTaxonomy drives run() through every exit path of the repository
// taxonomy: 0 clean, 1 finding, 2 usage, 3 infrastructure — the same
// table-driven proof the other commands carry.
func TestExitTaxonomy(t *testing.T) {
	tests := []struct {
		name    string
		files   map[string]string // materialized in a temp dir; %d/ expands to it
		args    []string
		want    int
		wantOut string // substring that must appear on stdout
		wantErr string // substring that must appear on stderr
	}{
		{
			name:  "clean source exits 0",
			files: map[string]string{"clean.py": cleanSrc},
			args:  []string{"%d/clean.py"},
			want:  0,
		},
		{
			name:    "error-severity finding exits 1",
			files:   map[string]string{"ubd.py": useBeforeDefSrc},
			args:    []string{"%d/ubd.py"},
			want:    1,
			wantOut: "use-before-def",
		},
		{
			name:    "parse failure is a finding about the program, exits 1",
			files:   map[string]string{"broken.py": "def run(:\n"},
			args:    []string{"%d/broken.py"},
			want:    1,
			wantErr: "broken.py",
		},
		{
			name:  "warning alone stays clean without -strict",
			files: map[string]string{"dead.py": deadStoreSrc},
			args:  []string{"%d/dead.py"},
			want:  0,
		},
		{
			name:    "-strict promotes warnings to findings, exits 1",
			files:   map[string]string{"dead.py": deadStoreSrc},
			args:    []string{"-strict", "%d/dead.py"},
			want:    1,
			wantOut: "dead-store",
		},
		{
			name: "no arguments is a usage error, exits 2",
			args: []string{},
			want: 2,
		},
		{
			name: "unknown flag is a usage error, exits 2",
			args: []string{"-no-such-flag"},
			want: 2,
		},
		{
			name:    "unknown benchmark is a usage error, exits 2",
			args:    []string{"-bench", "no-such-bench"},
			want:    2,
			wantErr: "unknown benchmark",
		},
		{
			name:    "unreadable input is infrastructure, exits 3",
			args:    []string{"%d/does-not-exist.py"},
			want:    3,
			wantErr: "does-not-exist.py",
		},
		{
			name:    "-bench resolves shipped workloads, exits 0",
			args:    []string{"-bench", "fib"},
			want:    0,
			wantOut: "deterministic",
		},
		{
			name:    "-facts dumps the certificate JSON",
			args:    []string{"-facts", "-q", "-bench", "fib"},
			want:    0,
			wantOut: "\"step_bound\"",
		},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := writeFiles(t, tc.files)
			args := make([]string, len(tc.args))
			for i, a := range tc.args {
				args[i] = strings.ReplaceAll(a, "%d", dir)
			}
			var stdout, stderr bytes.Buffer
			got := run(args, &stdout, &stderr)
			if got != tc.want {
				t.Fatalf("run(%q) = %d, want %d\nstdout:\n%s\nstderr:\n%s",
					args, got, tc.want, stdout.String(), stderr.String())
			}
			if tc.wantOut != "" && !strings.Contains(stdout.String(), tc.wantOut) {
				t.Errorf("stdout missing %q:\n%s", tc.wantOut, stdout.String())
			}
			if tc.wantErr != "" && !strings.Contains(stderr.String(), tc.wantErr) {
				t.Errorf("stderr missing %q:\n%s", tc.wantErr, stderr.String())
			}
		})
	}
}

// TestFactsMatchesAnalyzeCertificate pins that the -facts dump is the
// certificate itself (version header, per-function facts, step bound) and
// that a bounded workload reports its concrete bound through the CLI.
func TestFactsMatchesAnalyzeCertificate(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if got := run([]string{"-facts", "-q", "-bench", "matmul"}, &stdout, &stderr); got != 0 {
		t.Fatalf("run = %d, stderr: %s", got, stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"\"version\": 2",
		"\"determinism\"",
		"\"functions\"",
		"\"registers\"",
		"\"lowered\": true",
		"\"unboxed_sites\"",
		"\"bounded\": true",
		"\"module_steps\"",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("-facts output missing %q:\n%s", want, out)
		}
	}
}
