// Command benchgate is the CI perf-regression gate: it compares two result
// files written by `pybench -bench NAME -json` — a committed baseline and a
// fresh candidate — with the repository's own statistics (hierarchical
// bootstrap ratio CI on the candidate/baseline runtime, plus a minimum
// practical effect size) and exits non-zero when the candidate is a
// statistically sound slowdown.
//
// Usage:
//
//	benchgate -baseline base.json -candidate cand.json
//	benchgate -baseline base.json -candidate cand.json -confidence 0.99 -min-effect 0.02
//	benchgate -baseline seq.json -candidate par.json -equivalence
//	benchgate -mem-baseline BENCH_vm.json -mem-candidate fresh.json
//
// -equivalence switches to the parallel-determinism check: instead of a
// statistical comparison, the two results must contain the *identical*
// per-invocation sample set (times, cycles, steps), invocation by
// invocation — the property the sharded runner guarantees against the
// sequential runner at equal seeds, and the register tier against the
// stack tier at any seed (DESIGN.md §16).
//
// -mem-baseline/-mem-candidate run the memory gate over two benchjson
// documents (the BENCH_vm.json shape): every benchmark whose
// allocs_per_op or bytes_per_op grew past both the percentage threshold
// (-max-alloc-growth / -max-bytes-growth) and the absolute
// practical-effect floor (-alloc-floor / -bytes-floor) fails the gate.
// allocs/bytes are host-stable, so unlike ns/op this is a hard CI gate —
// it is how the register tier's unboxing win stays locked in. The memory
// gate composes with the result gate: give both pairs and both must pass.
//
// Exit codes follow the repository taxonomy: 0 = pass; 1 = regression (or
// equivalence/memory-gate failure); 2 = usage (bad flags, incomparable
// inputs); 3 = infrastructure (unreadable or undecodable result files).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/benchfmt"
	"repro/internal/exitcode"
	"repro/internal/harness"
	"repro/internal/perfstore"
	"repro/internal/stats"
	"repro/internal/wal"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main with injectable streams and an exit code, so tests drive the
// whole CLI in-process.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchgate", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		basePath    = fs.String("baseline", "", "baseline result JSON (from pybench -bench NAME -json)")
		candPath    = fs.String("candidate", "", "candidate result JSON to gate")
		equivalence = fs.Bool("equivalence", false, "require bit-identical per-invocation sample sets instead of a statistical comparison")
		confidence  = fs.Float64("confidence", stats.DefaultGateConfidence, "CI level for the regression decision")
		minEffect   = fs.Float64("min-effect", stats.DefaultGateMinEffect, "minimum relative slowdown treated as a regression (negative = none)")
		resamples   = fs.Int("resamples", 0, "bootstrap resamples (0 = library default)")
		seed        = fs.Uint64("seed", 1, "bootstrap RNG seed (the gate decision is deterministic per seed)")
		histPath    = fs.String("history", "", "benchtrack history (BENCH_history.jsonl): print the longitudinal trend next to the verdict")
		trendLast   = fs.Int("trend-last", 10, "trend window (runs) for the -history summary")

		memBasePath = fs.String("mem-baseline", "", "baseline benchjson document (BENCH_vm.json) for the memory gate")
		memCandPath = fs.String("mem-candidate", "", "candidate benchjson document to memory-gate")
		memDef      = benchfmt.DefaultMemThresholds()
		allocPct    = fs.Float64("max-alloc-growth", memDef.MaxAllocGrowthPct, "allowed allocs_per_op growth in percent (negative = off)")
		bytesPct    = fs.Float64("max-bytes-growth", memDef.MaxBytesGrowthPct, "allowed bytes_per_op growth in percent (negative = off)")
		allocFloor  = fs.Int64("alloc-floor", memDef.AllocFloor, "absolute allocs_per_op growth below which the memory gate never fails")
		bytesFloor  = fs.Int64("bytes-floor", memDef.BytesFloor, "absolute bytes_per_op growth below which the memory gate never fails")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if (*memBasePath == "") != (*memCandPath == "") {
		fmt.Fprintln(stderr, "benchgate: -mem-baseline and -mem-candidate must be given together")
		return 2
	}
	memCode := -1
	if *memBasePath != "" {
		memCode = runMemGate(*memBasePath, *memCandPath, benchfmt.MemThresholds{
			MaxAllocGrowthPct: *allocPct,
			MaxBytesGrowthPct: *bytesPct,
			AllocFloor:        *allocFloor,
			BytesFloor:        *bytesFloor,
		}, stdout, stderr)
		// Memory-only invocation: the result gate is skipped entirely.
		if *basePath == "" && *candPath == "" {
			return memCode
		}
	}
	if *basePath == "" || *candPath == "" {
		fmt.Fprintln(stderr, "benchgate: both -baseline and -candidate are required")
		fs.Usage()
		return 2
	}
	base, err := readResult(*basePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return exitcode.Infra
	}
	cand, err := readResult(*candPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return exitcode.Infra
	}
	if base.Benchmark != cand.Benchmark || base.Mode != cand.Mode {
		fmt.Fprintf(stderr, "benchgate: results are not comparable: baseline is %s/%s, candidate is %s/%s\n",
			base.Benchmark, base.Mode, cand.Benchmark, cand.Mode)
		return 2
	}

	var code int
	if *equivalence {
		code = runEquivalence(base, cand, stdout, stderr)
	} else {
		code = runGate(base, cand, stats.GateThresholds{
			Confidence: *confidence,
			MinEffect:  *minEffect,
			Resamples:  *resamples,
		}, *seed, stdout, stderr)
	}
	// The two-snapshot verdict and the trajectory view cross-reference each
	// other: a PASS here can still sit on a slow multi-run drift, and a
	// FAIL is easier to triage next to the commit-attributed history.
	if *histPath != "" {
		printTrend(*histPath, base.Benchmark, *trendLast, stdout, stderr)
	}
	// Both gates ran: the worse verdict wins the exit code.
	if memCode > code {
		return memCode
	}
	return code
}

// runMemGate applies the allocs/bytes regression gate to two benchjson
// documents (see internal/benchfmt.MemGate for the two-bar policy).
func runMemGate(basePath, candPath string, th benchfmt.MemThresholds, stdout, stderr io.Writer) int {
	base, err := benchfmt.ReadFile(basePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return exitcode.Infra
	}
	cand, err := benchfmt.ReadFile(candPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate:", err)
		return exitcode.Infra
	}
	violations := benchfmt.MemGate(base, cand, th)
	for _, v := range violations {
		fmt.Fprintf(stderr, "benchgate: FAIL: %v\n", v)
	}
	if len(violations) > 0 {
		return 1
	}
	fmt.Fprintf(stdout, "benchgate: PASS: memory gate over %d benchmark(s) (alloc growth <= %.0f%% or <= %d allocs; bytes growth <= %.0f%% or <= %d B)\n",
		len(cand.Benchmarks), th.MaxAllocGrowthPct, th.AllocFloor, th.MaxBytesGrowthPct, th.BytesFloor)
	return 0
}

// printTrend prints benchtrack's one-line longitudinal summary for the
// gated benchmark. Trend problems never change the gate verdict — the
// trajectory alert lives in `benchtrack report` — so failures here only
// warn.
func printTrend(histPath, benchmark string, lastN int, stdout, stderr io.Writer) {
	store, err := perfstore.Open(wal.OSFS{}, histPath)
	if err != nil {
		fmt.Fprintln(stderr, "benchgate: trend unavailable:", err)
		return
	}
	//benchlint:allow uncheckederr — read-only use of the journal
	defer store.Close()
	line := perfstore.TrendLine(store.Runs(), store.Acked(), benchmark, lastN)
	if line == "" {
		fmt.Fprintf(stdout, "benchgate: no longitudinal history for %s in %s\n", benchmark, histPath)
		return
	}
	fmt.Fprintf(stdout, "benchgate: %s\n", line)
}

func readResult(path string) (*harness.Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	//benchlint:allow uncheckederr — file opened read-only
	defer f.Close()
	res, err := harness.ReadResultJSON(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(res.Invocations) == 0 {
		return nil, fmt.Errorf("%s: result has no invocations", path)
	}
	return res, nil
}

// runGate performs the statistical regression decision.
func runGate(base, cand *harness.Result, th stats.GateThresholds, seed uint64,
	stdout, stderr io.Writer) int {
	hb, repB := stats.Sanitize(base.Hierarchical())
	hc, repC := stats.Sanitize(cand.Hierarchical())
	if !repB.Clean() || !repC.Clean() {
		fmt.Fprintf(stdout, "benchgate: sanitized inputs (baseline: %d quarantined/%d dropped; candidate: %d/%d)\n",
			repB.QuarantinedSamples, repB.DroppedInvocations,
			repC.QuarantinedSamples, repC.DroppedInvocations)
	}
	v := stats.PerfGate(hb, hc, th, stats.NewRNG(seed))
	fmt.Fprintf(stdout,
		"benchgate: %s/%s: runtime ratio %.4f (candidate/baseline), %g%% CI [%.4f, %.4f], Cohen's d %.2f, min effect %.1f%%\n",
		base.Benchmark, base.Mode, v.Ratio, 100*v.CI.Confidence, v.CI.Lo, v.CI.Hi,
		v.EffectD, 100*v.MinEffect)
	switch {
	case v.Slowdown:
		fmt.Fprintf(stderr, "benchgate: FAIL: statistically significant slowdown of %.1f%% (CI excludes 1)\n",
			100*(v.Ratio-1))
		return 1
	case v.Speedup:
		fmt.Fprintf(stdout, "benchgate: PASS: statistically significant speedup of %.1f%%\n",
			100*(1-v.Ratio))
	case v.Significant():
		fmt.Fprintln(stdout, "benchgate: PASS: shift is statistically detectable but below the practical-effect floor")
	default:
		fmt.Fprintln(stdout, "benchgate: PASS: no statistically significant change")
	}
	return 0
}

// runEquivalence checks the parallel-determinism contract: identical
// per-invocation measurement vectors in canonical invocation order.
func runEquivalence(base, cand *harness.Result, stdout, stderr io.Writer) int {
	if len(base.Invocations) != len(cand.Invocations) {
		fmt.Fprintf(stderr, "benchgate: FAIL: invocation counts differ: %d vs %d\n",
			len(base.Invocations), len(cand.Invocations))
		return 1
	}
	for i := range base.Invocations {
		bi, ci := base.Invocations[i], cand.Invocations[i]
		if err := equalVectors(bi.TimesSec, ci.TimesSec); err != nil {
			fmt.Fprintf(stderr, "benchgate: FAIL: invocation %d times differ: %v\n", i, err)
			return 1
		}
		if err := equalUints(bi.Cycles, ci.Cycles); err != nil {
			fmt.Fprintf(stderr, "benchgate: FAIL: invocation %d cycles differ: %v\n", i, err)
			return 1
		}
		if err := equalUints(bi.Steps, ci.Steps); err != nil {
			fmt.Fprintf(stderr, "benchgate: FAIL: invocation %d steps differ: %v\n", i, err)
			return 1
		}
		if bi.Checksum != ci.Checksum {
			fmt.Fprintf(stderr, "benchgate: FAIL: invocation %d checksums differ: %s vs %s\n",
				i, bi.Checksum, ci.Checksum)
			return 1
		}
	}
	fmt.Fprintf(stdout, "benchgate: PASS: %d invocations bit-identical (%s/%s)\n",
		len(base.Invocations), base.Benchmark, base.Mode)
	return 0
}

func equalVectors(a, b []float64) error {
	if len(a) != len(b) {
		return fmt.Errorf("lengths %d vs %d", len(a), len(b))
	}
	for j := range a {
		if a[j] != b[j] {
			return fmt.Errorf("iteration %d: %v vs %v", j, a[j], b[j])
		}
	}
	return nil
}

func equalUints(a, b []uint64) error {
	if len(a) != len(b) {
		return fmt.Errorf("lengths %d vs %d", len(a), len(b))
	}
	for j := range a {
		if a[j] != b[j] {
			return fmt.Errorf("iteration %d: %d vs %d", j, a[j], b[j])
		}
	}
	return nil
}
