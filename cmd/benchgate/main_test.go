package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
	"repro/internal/harness"
	"repro/internal/perfstore"
	"repro/internal/wal"
)

const (
	baselineFixture = "testdata/baseline.json"
	slow20Fixture   = "testdata/slow20.json"
)

func gate(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestIdenticalBaselinePasses(t *testing.T) {
	code, stdout, _ := gate(t, "-baseline", baselineFixture, "-candidate", baselineFixture)
	if code != 0 {
		t.Fatalf("identical inputs exited %d\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "PASS") {
		t.Fatalf("missing PASS verdict:\n%s", stdout)
	}
}

func TestTwentyPercentSlowdownFails(t *testing.T) {
	code, stdout, stderr := gate(t, "-baseline", baselineFixture, "-candidate", slow20Fixture)
	if code != 1 {
		t.Fatalf("20%% slowdown exited %d, want 1\n%s%s", code, stdout, stderr)
	}
	if !strings.Contains(stderr, "significant slowdown") {
		t.Fatalf("missing slowdown diagnosis:\n%s", stderr)
	}
}

func TestSpeedupDirectionPasses(t *testing.T) {
	// Gating the slow result against the fast one is a speedup: not a failure.
	code, stdout, _ := gate(t, "-baseline", slow20Fixture, "-candidate", baselineFixture)
	if code != 0 {
		t.Fatalf("speedup exited %d\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "speedup") {
		t.Fatalf("missing speedup verdict:\n%s", stdout)
	}
}

func TestEquivalenceSelfMatch(t *testing.T) {
	code, stdout, _ := gate(t, "-baseline", baselineFixture, "-candidate", baselineFixture, "-equivalence")
	if code != 0 || !strings.Contains(stdout, "bit-identical") {
		t.Fatalf("self-equivalence failed (exit %d):\n%s", code, stdout)
	}
}

func TestEquivalenceDetectsSingleSampleDrift(t *testing.T) {
	res := loadFixture(t, baselineFixture)
	res.Invocations[2].TimesSec[3] *= 1.0000001
	drifted := writeFixture(t, res)
	code, _, stderr := gate(t, "-baseline", baselineFixture, "-candidate", drifted, "-equivalence")
	if code != 1 {
		t.Fatalf("drifted sample exited %d, want 1", code)
	}
	if !strings.Contains(stderr, "invocation 2") {
		t.Fatalf("mismatch not pinpointed:\n%s", stderr)
	}
}

func TestMismatchedBenchmarksRejected(t *testing.T) {
	res := loadFixture(t, baselineFixture)
	res.Benchmark = "nbody"
	other := writeFixture(t, res)
	code, _, stderr := gate(t, "-baseline", baselineFixture, "-candidate", other)
	if code != 2 {
		t.Fatalf("cross-benchmark comparison exited %d, want 2", code)
	}
	if !strings.Contains(stderr, "not comparable") {
		t.Fatalf("missing diagnosis:\n%s", stderr)
	}
}

func TestMissingFlagsUsageError(t *testing.T) {
	if code, _, _ := gate(t, "-baseline", baselineFixture); code != 2 {
		t.Fatalf("missing -candidate exited %d, want 2", code)
	}
	// Unreadable input is an infrastructure failure (3), not usage: the
	// flags were fine, the environment was not.
	if code, _, _ := gate(t, "-candidate", baselineFixture, "-baseline", "testdata/nonexistent.json"); code != 3 {
		t.Fatalf("unreadable baseline exited %d, want 3", code)
	}
}

func TestNoEffectFloorFlagsTinyShift(t *testing.T) {
	// A 1% uniform slowdown passes the default 2% floor but fails with
	// the floor disabled (-min-effect -1 = pure significance test).
	res := loadFixture(t, baselineFixture)
	for i := range res.Invocations {
		for j := range res.Invocations[i].TimesSec {
			res.Invocations[i].TimesSec[j] *= 1.01
		}
	}
	tiny := writeFixture(t, res)
	if code, stdout, _ := gate(t, "-baseline", baselineFixture, "-candidate", tiny); code != 0 {
		t.Fatalf("sub-floor shift exited %d, want 0\n%s", code, stdout)
	}
	if code, _, _ := gate(t, "-baseline", baselineFixture, "-candidate", tiny, "-min-effect", "-1"); code != 1 {
		t.Fatalf("floor-disabled gate did not flag the shift (exit %d)", code)
	}
}

func loadFixture(t *testing.T, path string) *harness.Result {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	res, err := harness.ReadResultJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func writeFixture(t *testing.T, res *harness.Result) string {
	t.Helper()
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "result.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// -history cross-references the two-snapshot verdict with benchtrack's
// longitudinal view: the one-line trend summary for the gated benchmark
// prints next to the verdict without changing the gate decision.
func TestHistoryTrendLinePrintsNextToVerdict(t *testing.T) {
	hist := filepath.Join(t.TempDir(), "hist.jsonl")
	store, err := perfstore.Open(wal.OSFS{}, hist)
	if err != nil {
		t.Fatal(err)
	}
	values := []float64{1.00, 1.00, 1.01, 0.99, 1.00, 1.00, 1.20, 1.20, 1.21, 1.20}
	for i, v := range values {
		rec := perfstore.Record{
			Kind:   perfstore.KindRun,
			Commit: strings.Repeat("a", 39) + string(rune('a'+i)),
			Source: perfstore.SourcePybench,
			Host:   perfstore.Simulated,
			Points: []perfstore.Point{{Benchmark: "fib/interp", Value: v, Unit: "s/iter"}},
		}
		if err := store.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	store.Close()

	code, stdout, _ := gate(t, "-baseline", baselineFixture, "-candidate", baselineFixture,
		"-history", hist)
	if code != 0 {
		t.Fatalf("gate verdict changed by -history: exit %d\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "trend (10 runs)") || !strings.Contains(stdout, "fib/interp") {
		t.Fatalf("trend line missing:\n%s", stdout)
	}
	if !strings.Contains(stdout, "↑") {
		t.Fatalf("trend direction arrow missing:\n%s", stdout)
	}
}

// writeMemDoc marshals a benchjson document to a temp file.
func writeMemDoc(t *testing.T, doc *benchfmt.Doc) string {
	t.Helper()
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "mem.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// The memory gate standalone: -mem-baseline/-mem-candidate without the
// result-gate flags is a complete invocation.
func TestMemGateStandalone(t *testing.T) {
	base := writeMemDoc(t, &benchfmt.Doc{Benchmarks: []benchfmt.Entry{
		{Name: "BenchmarkCallFib", AllocsPerOp: 19, BytesPerOp: 9880},
	}})
	regressed := writeMemDoc(t, &benchfmt.Doc{Benchmarks: []benchfmt.Entry{
		{Name: "BenchmarkCallFib", AllocsPerOp: 60, BytesPerOp: 9880},
	}})
	code, stdout, _ := gate(t, "-mem-baseline", base, "-mem-candidate", base)
	if code != 0 || !strings.Contains(stdout, "PASS: memory gate") {
		t.Fatalf("self-comparison failed (exit %d):\n%s", code, stdout)
	}
	code, _, stderr := gate(t, "-mem-baseline", base, "-mem-candidate", regressed)
	if code != 1 {
		t.Fatalf("alloc regression exited %d, want 1", code)
	}
	if !strings.Contains(stderr, "allocs/op grew 19 -> 60") {
		t.Fatalf("missing violation detail:\n%s", stderr)
	}
}

// The memory gate composes with the result gate: a passing result pair
// plus a failing memory pair fails the whole invocation.
func TestMemGateComposesWithResultGate(t *testing.T) {
	base := writeMemDoc(t, &benchfmt.Doc{Benchmarks: []benchfmt.Entry{
		{Name: "BenchmarkForRange", AllocsPerOp: 19},
	}})
	regressed := writeMemDoc(t, &benchfmt.Doc{Benchmarks: []benchfmt.Entry{
		{Name: "BenchmarkForRange", AllocsPerOp: 2835},
	}})
	code, _, stderr := gate(t, "-baseline", baselineFixture, "-candidate", baselineFixture,
		"-mem-baseline", base, "-mem-candidate", regressed)
	if code != 1 {
		t.Fatalf("combined gate exited %d, want 1\n%s", code, stderr)
	}
}

func TestMemGateFlagPairRequired(t *testing.T) {
	if code, _, _ := gate(t, "-mem-baseline", "somefile.json"); code != 2 {
		t.Fatalf("half a mem pair exited %d, want 2", code)
	}
	if code, _, _ := gate(t, "-mem-baseline", "nonexistent.json", "-mem-candidate", "nonexistent.json"); code != 3 {
		t.Fatalf("unreadable mem docs exited %d, want 3", code)
	}
}

func TestHistoryMissingSeriesIsReportedNotFatal(t *testing.T) {
	hist := filepath.Join(t.TempDir(), "empty.jsonl")
	code, stdout, _ := gate(t, "-baseline", baselineFixture, "-candidate", baselineFixture,
		"-history", hist)
	if code != 0 {
		t.Fatalf("empty history changed the verdict: exit %d", code)
	}
	if !strings.Contains(stdout, "no longitudinal history") {
		t.Fatalf("missing-history note absent:\n%s", stdout)
	}
}
