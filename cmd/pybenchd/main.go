// Command pybenchd is the benchmarking-as-a-service daemon: the rigorous
// harness behind an HTTP/JSON control plane. Clients submit campaign
// specifications (benchmarks, arms, seeds, fault/isolation policy), the
// daemon schedules them onto a bounded queue with per-tenant quotas,
// streams progress as Server-Sent Events, and persists every accepted
// campaign in a crash-safe WAL ledger — kill -9 the daemon mid-campaign,
// restart it on the same data directory, and the interrupted work resumes
// from its checkpoint journals.
//
// Usage:
//
//	pybenchd -addr 127.0.0.1:7070 -data /var/lib/pybenchd
//
// Knobs: -queue (pending-campaign bound), -slots (concurrent campaigns),
// -tenant-quota (in-flight campaigns per tenant), -max-steps / -max-wall
// (per-invocation budget ceilings clamped onto every submission),
// -drain-timeout (graceful-shutdown grace before running campaigns are
// cancelled). -addr-file writes the resolved listen address (for -addr
// :0 harnesses). -chaos-crash-after N arms the chaos hook: the first
// campaign executed SIGKILLs the daemon after N invocation slots — the
// crash-recovery suite's way of producing a genuine kill -9.
//
// SIGINT/SIGTERM drain gracefully: running campaigns finish (up to
// -drain-timeout), queued campaigns stay journaled for the next start.
//
// Exit codes follow the repository taxonomy: 0 = clean shutdown,
// 2 = usage, 3 = infrastructure failure.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/controlapi"
	"repro/internal/exitcode"
	"repro/internal/harness"
	"repro/internal/version"
)

func main() {
	// The hidden re-exec mode: campaign specs with "isolate" run every
	// invocation attempt in a watchdogged child, and the harness resolves
	// that child by re-executing its own binary with -worker.
	if len(os.Args) == 2 && os.Args[1] == "-worker" {
		if err := harness.WorkerMain(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "pybenchd -worker:", err)
			os.Exit(exitcode.Infra)
		}
		return
	}
	var (
		addr         = flag.String("addr", "127.0.0.1:7070", "listen address (host:port; port 0 picks a free port)")
		addrFile     = flag.String("addr-file", "", "write the resolved listen address to FILE (for -addr :0 harnesses)")
		dataDir      = flag.String("data", ".pybenchd", "data directory: job ledger, checkpoint journals, result documents")
		queueDepth   = flag.Int("queue", 32, "max accepted-but-unstarted campaigns before submissions get 429")
		slots        = flag.Int("slots", 2, "campaigns executed concurrently")
		tenantQuota  = flag.Int("tenant-quota", 4, "max in-flight (queued+running) campaigns per tenant")
		maxSteps     = flag.Uint64("max-steps", 0, "per-invocation step-budget ceiling clamped onto every submission (0 = service default)")
		maxWall      = flag.Duration("max-wall", 0, "per-invocation wall-budget ceiling clamped onto every submission (0 = service default)")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown grace before running campaigns are cancelled")
		crashAfter   = flag.Int("chaos-crash-after", 0, "chaos hook: first campaign executed kills this process (SIGKILL) after N invocation slots (0 = off; never production)")
		showVersion  = flag.Bool("version", false, "print version, Go version, and platform, then exit")
	)
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return
	}
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "pybenchd: unexpected argument %q\n", flag.Arg(0))
		flag.Usage()
		os.Exit(exitcode.Usage)
	}
	logger := log.New(os.Stderr, "pybenchd: ", log.LstdFlags|log.LUTC) //benchlint:allow clock — operational log timestamps
	if err := run(options{
		addr:         *addr,
		addrFile:     *addrFile,
		dataDir:      *dataDir,
		queueDepth:   *queueDepth,
		slots:        *slots,
		tenantQuota:  *tenantQuota,
		maxSteps:     *maxSteps,
		maxWall:      *maxWall,
		drainTimeout: *drainTimeout,
		crashAfter:   *crashAfter,
	}, logger); err != nil {
		logger.Print(err)
		os.Exit(exitcode.Infra)
	}
}

type options struct {
	addr, addrFile, dataDir        string
	queueDepth, slots, tenantQuota int
	maxSteps                       uint64
	maxWall, drainTimeout          time.Duration
	crashAfter                     int
}

func run(o options, logger *log.Logger) error {
	srv, err := controlapi.New(controlapi.Options{
		DataDir:         o.dataDir,
		QueueDepth:      o.queueDepth,
		Slots:           o.slots,
		TenantQuota:     o.tenantQuota,
		MaxStepBudget:   o.maxSteps,
		MaxWallBudget:   o.maxWall,
		CrashAfterSlots: o.crashAfter,
		// A genuine kill -9: no deferred functions, no flushing, no
		// journaling. The ledger must already be durable — that is the
		// property the crash-recovery suite verifies.
		CrashFunc: func() {
			logger.Print("chaos crash point tripped; sending SIGKILL to self")
			//benchlint:allow uncheckederr — SIGKILL to self cannot be handled
			syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // unreachable; SIGKILL is not deliverable to a handler
		},
		Logf: logger.Printf,
	})
	if err != nil {
		return err
	}
	srv.Start()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", o.addr, err)
	}
	resolved := ln.Addr().String()
	if o.addrFile != "" {
		// Written atomically so a polling harness never reads a torn file.
		tmp := o.addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(resolved+"\n"), 0o644); err != nil {
			return fmt.Errorf("writing addr file: %w", err)
		}
		if err := os.Rename(tmp, o.addrFile); err != nil {
			return fmt.Errorf("writing addr file: %w", err)
		}
	}
	logger.Printf("serving on http://%s (data %s, %d slots, queue %d, tenant quota %d)",
		resolved, o.dataDir, o.slots, o.queueDepth, o.tenantQuota)

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-serveErr:
		return fmt.Errorf("serving: %w", err)
	case s := <-sig:
		logger.Printf("received %s; draining (running campaigns finish, queued stay journaled)", s)
	}

	// Graceful shutdown: stop accepting, let running campaigns finish
	// within the grace period, cancel them past it. Queued campaigns stay
	// in the ledger — the next start re-enqueues them.
	ctx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		//benchlint:allow uncheckederr — the drain error wins over listener close
		hs.Close()
		return fmt.Errorf("draining: %w", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		//benchlint:allow uncheckederr — best-effort close after failed graceful shutdown
		hs.Close()
	}
	logger.Print("drained; goodbye")
	return nil
}
