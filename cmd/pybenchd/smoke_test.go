package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"repro/client"
	"repro/internal/harness"
)

// TestDaemonSmoke is the CI daemon-smoke gate (`make daemon-smoke`): it
// builds the real pybench and pybenchd binaries, starts the daemon on a
// loopback port, submits a two-benchmark campaign through the Go client,
// streams it to completion, and asserts the daemon's sample sets are
// bit-identical to one-shot `pybench -json` runs of the same specs. A
// second phase arms -chaos-crash-after so the daemon SIGKILLs itself
// mid-campaign, restarts it on the same data directory, and verifies the
// interrupted campaign resumes from its checkpoint journal with — again —
// a bit-identical sample set.
//
// Gated behind PYBENCHD_SMOKE=1: it builds binaries and forks processes,
// which is CI work, not unit-test work. Daemon logs and traces land in
// PYBENCHD_SMOKE_ARTIFACTS (default: the test temp dir) for upload on
// failure.
func TestDaemonSmoke(t *testing.T) {
	if os.Getenv("PYBENCHD_SMOKE") != "1" {
		t.Skip("set PYBENCHD_SMOKE=1 to run the daemon smoke test")
	}
	artifacts := os.Getenv("PYBENCHD_SMOKE_ARTIFACTS")
	if artifacts == "" {
		artifacts = t.TempDir()
	}
	if err := os.MkdirAll(artifacts, 0o755); err != nil {
		t.Fatal(err)
	}
	bins := t.TempDir()
	pybench := filepath.Join(bins, "pybench")
	pybenchd := filepath.Join(bins, "pybenchd")
	for bin, pkg := range map[string]string{pybench: "repro/cmd/pybench", pybenchd: "repro/cmd/pybenchd"} {
		cmd := exec.Command("go", "build", "-o", bin, pkg)
		cmd.Dir = repoRoot(t)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", pkg, err, out)
		}
	}

	spec := client.CampaignSpec{
		Benchmarks:  []string{"fib", "collatz"},
		Invocations: 4,
		Iterations:  5,
		Seed:        42,
		Noise:       "quiet",
		Tenant:      "smoke",
	}

	t.Run("BitIdenticalToOneShot", func(t *testing.T) {
		dataDir := t.TempDir()
		d := startDaemon(t, pybenchd, dataDir, filepath.Join(artifacts, "daemon-smoke.log"))
		defer d.stop(t)

		cl := client.New(d.addr, client.WithTenant("smoke"))
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		st, err := cl.Submit(ctx, spec)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		final, err := cl.Wait(ctx, st.ID, nil)
		if err != nil {
			t.Fatalf("Wait: %v", err)
		}
		if len(final.Results) != len(spec.Benchmarks) {
			t.Fatalf("daemon returned %d results, want %d", len(final.Results), len(spec.Benchmarks))
		}
		saveTrace(t, d.addr, st.ID, filepath.Join(artifacts, "daemon-smoke.trace.json"))

		// The contract under test: the daemon path and the one-shot CLI
		// path produce bit-identical sample sets for the same spec.
		for i, bench := range spec.Benchmarks {
			oneShot := runOneShot(t, pybench, bench, spec)
			if !reflect.DeepEqual(final.Results[i].Invocations, oneShot.Invocations) {
				t.Errorf("%s: daemon sample set differs from one-shot pybench", bench)
			}
		}
	})

	t.Run("CrashRecovery", func(t *testing.T) {
		dataDir := t.TempDir()
		crash := startDaemonArgs(t, pybenchd, dataDir,
			filepath.Join(artifacts, "daemon-crash.log"), "-chaos-crash-after", "2")

		cl := client.New(crash.addr, client.WithTenant("smoke"))
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		chaosSpec := spec
		chaosSpec.Benchmarks = []string{"fib"}
		chaosSpec.Invocations = 5
		st, err := cl.Submit(ctx, chaosSpec)
		if err != nil {
			t.Fatalf("Submit: %v", err)
		}
		// The daemon SIGKILLs itself at the crash point: a genuine kill -9,
		// observed as process death.
		if err := crash.cmd.Wait(); err == nil {
			t.Fatal("daemon exited cleanly; expected SIGKILL at the crash point")
		} else if !strings.Contains(err.Error(), "killed") {
			t.Fatalf("daemon died of %v, expected SIGKILL", err)
		}

		// Restart on the same data dir: the ledger re-enqueues the
		// interrupted campaign and its checkpoint journal resumes it.
		d2 := startDaemon(t, pybenchd, dataDir, filepath.Join(artifacts, "daemon-recover.log"))
		defer d2.stop(t)
		cl2 := client.New(d2.addr, client.WithTenant("smoke"))
		final, err := cl2.Wait(ctx, st.ID, nil)
		if err != nil {
			t.Fatalf("Wait after restart: %v", err)
		}
		if len(final.Results) != 1 {
			t.Fatalf("recovered campaign has %d results", len(final.Results))
		}
		sv := final.Results[0].Supervision
		if sv == nil || sv.ResumedFrom == 0 {
			t.Fatalf("recovered campaign did not resume from checkpoint: %+v", sv)
		}
		oneShot := runOneShot(t, pybench, "fib", chaosSpec)
		if !reflect.DeepEqual(final.Results[0].Invocations, oneShot.Invocations) {
			t.Error("resumed sample set differs from uninterrupted one-shot run")
		}
	})
}

// daemon is one running pybenchd process plus its resolved address.
type daemon struct {
	cmd  *exec.Cmd
	addr string
	log  *os.File
}

func startDaemon(t *testing.T, bin, dataDir, logPath string, extra ...string) *daemon {
	return startDaemonArgs(t, bin, dataDir, logPath, extra...)
}

func startDaemonArgs(t *testing.T, bin, dataDir, logPath string, extra ...string) *daemon {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := append([]string{
		"-addr", "127.0.0.1:0",
		"-addr-file", addrFile,
		"-data", dataDir,
		"-slots", "1",
	}, extra...)
	logF, err := os.OpenFile(logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(bin, args...)
	cmd.Stderr = logF
	cmd.Stdout = logF
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting pybenchd: %v", err)
	}
	d := &daemon{cmd: cmd, log: logF}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if data, err := os.ReadFile(addrFile); err == nil {
			d.addr = strings.TrimSpace(string(data))
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pybenchd never wrote %s (log: %s)", addrFile, logPath)
		}
		time.Sleep(20 * time.Millisecond)
	}
	return d
}

// stop drains the daemon with SIGTERM and waits for a clean exit.
func (d *daemon) stop(t *testing.T) {
	t.Helper()
	if d.cmd.ProcessState != nil {
		return
	}
	if err := d.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Errorf("SIGTERM: %v", err)
	}
	if err := d.cmd.Wait(); err != nil {
		t.Errorf("daemon did not drain cleanly: %v", err)
	}
	d.log.Close()
}

// runOneShot runs `pybench -bench NAME -json` with the spec's knobs and
// parses the raw result document.
func runOneShot(t *testing.T, pybench, bench string, spec client.CampaignSpec) *harness.Result {
	t.Helper()
	cmd := exec.Command(pybench,
		"-bench", bench,
		"-invocations", fmt.Sprint(spec.Invocations),
		"-iterations", fmt.Sprint(spec.Iterations),
		"-seed", fmt.Sprint(spec.Seed),
		"-noise", spec.Noise,
		"-json",
	)
	var out, errb bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = &errb
	if err := cmd.Run(); err != nil {
		t.Fatalf("one-shot pybench -bench %s: %v\n%s", bench, err, errb.String())
	}
	res, err := harness.ReadResultJSON(&out)
	if err != nil {
		t.Fatalf("parsing one-shot result: %v", err)
	}
	return res
}

// saveTrace downloads the campaign's Chrome trace as a CI artifact.
func saveTrace(t *testing.T, addr, id, path string) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/api/v1/campaigns/" + id + "/trace")
	if err != nil {
		t.Logf("fetching trace: %v", err)
		return
	}
	defer resp.Body.Close()
	f, err := os.Create(path)
	if err != nil {
		t.Logf("saving trace: %v", err)
		return
	}
	defer f.Close()
	if _, err := f.ReadFrom(resp.Body); err != nil {
		t.Logf("saving trace: %v", err)
	}
}

// repoRoot locates the module root (the test runs from cmd/pybenchd).
func repoRoot(t *testing.T) string {
	t.Helper()
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	return filepath.Dir(strings.TrimSpace(string(out)))
}
