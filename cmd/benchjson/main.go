// Command benchjson converts `go test -bench -benchmem` text output into a
// stable JSON document, and optionally compares it against a committed
// baseline (BENCH_vm.json) so the repo accumulates a real wall-clock perf
// trajectory alongside the simulated results.
//
// Usage:
//
//	go test ./internal/vm -bench . -benchmem | benchjson -out BENCH_vm.json
//	go test ./internal/vm -bench . -benchmem | benchjson -baseline BENCH_vm.json
//	go test ... | benchjson -baseline BENCH_vm.json -require BenchmarkDispatchArith:25
//	go test ... | benchjson -baseline BENCH_vm.json -max-alloc-growth 10 -max-bytes-growth 25
//
// Comparison prints per-benchmark ns/op deltas. Wall-clock numbers are
// host-dependent, so the ns/op compare mode is informational by default;
// -require NAME:PCT entries turn specific improvements into hard gates
// (exit 1 when the named benchmark improved by less than PCT percent vs.
// the baseline). allocs_per_op and bytes_per_op, by contrast, are
// host-stable, so -max-alloc-growth / -max-bytes-growth gate *every*
// benchmark's memory profile against the baseline: exit 1 when any grows
// past the given percentage AND past the absolute practical-effect floor
// (-alloc-floor / -bytes-floor) — the floor keeps one-allocation jitter on
// lean benchmarks from failing CI (see internal/benchfmt.MemGate).
//
// Emitted documents carry a provenance block (commit SHA, branch, Go
// version, UTC timestamp — override with -commit/-branch, drop with
// -no-stamp) so cmd/benchtrack can attribute every measurement to the
// commit range it landed in without side-channel flags.
//
// Exit codes follow the repository taxonomy: 0 = pass; 1 = a -require or
// memory gate failed; 2 = usage; 3 = unreadable/unwritable input or output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/benchfmt"
	"repro/internal/exitcode"
)

// Doc and Entry are the shared benchmark-document model (the committed
// BENCH_vm.json shape), owned by internal/benchfmt since the memory gate
// moved there.
type (
	Doc   = benchfmt.Doc
	Entry = benchfmt.Entry
)

func parse(r io.Reader) (*Doc, error) { return benchfmt.Parse(r) }

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

type requirement struct {
	name string
	pct  float64
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	def := benchfmt.DefaultMemThresholds()
	var (
		outPath  = fs.String("out", "", "write the parsed JSON document to this file ('-' = stdout)")
		basePath = fs.String("baseline", "", "compare against this baseline JSON document")
		commit   = fs.String("commit", "", "commit SHA to stamp into the document (default: git rev-parse HEAD)")
		branch   = fs.String("branch", "", "branch name to stamp (default: git rev-parse --abbrev-ref HEAD)")
		noStamp  = fs.Bool("no-stamp", false, "omit the provenance block (commit/branch/go version/time)")

		allocPct   = fs.Float64("max-alloc-growth", -1, "fail when any benchmark's allocs_per_op grew more than this percent vs. the baseline (negative = off)")
		bytesPct   = fs.Float64("max-bytes-growth", -1, "fail when any benchmark's bytes_per_op grew more than this percent vs. the baseline (negative = off)")
		allocFloor = fs.Int64("alloc-floor", def.AllocFloor, "absolute allocs_per_op growth below which the alloc gate never fails")
		bytesFloor = fs.Int64("bytes-floor", def.BytesFloor, "absolute bytes_per_op growth below which the bytes gate never fails")

		requires requireList
	)
	fs.Var(&requires, "require", "NAME:PCT — fail unless NAME improved by at least PCT% vs. the baseline (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	doc, err := parse(stdin)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return exitcode.Infra
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines found on input")
		return exitcode.Infra
	}
	if !*noStamp {
		stampProvenance(doc, *commit, *branch)
	}
	if *outPath != "" {
		if err := writeDoc(doc, *outPath, stdout); err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return exitcode.Infra
		}
	}
	if *basePath == "" {
		if *outPath == "" {
			// No baseline and no -out: emit the document to stdout.
			if err := writeDoc(doc, "-", stdout); err != nil {
				fmt.Fprintln(stderr, "benchjson:", err)
				return exitcode.Infra
			}
		}
		if len(requires) > 0 || *allocPct >= 0 || *bytesPct >= 0 {
			fmt.Fprintln(stderr, "benchjson: -require and the memory gates need -baseline")
			return exitcode.Usage
		}
		return exitcode.OK
	}
	base, err := benchfmt.ReadFile(*basePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return exitcode.Infra
	}
	th := benchfmt.MemThresholds{
		MaxAllocGrowthPct: *allocPct,
		MaxBytesGrowthPct: *bytesPct,
		AllocFloor:        *allocFloor,
		BytesFloor:        *bytesFloor,
	}
	return compare(base, doc, requires, th, stdout, stderr)
}

// requireList parses repeated -require NAME:PCT flags.
type requireList []requirement

func (r *requireList) String() string { return fmt.Sprint([]requirement(*r)) }

func (r *requireList) Set(s string) error {
	i := strings.LastIndex(s, ":")
	if i < 0 {
		return fmt.Errorf("want NAME:PCT, got %q", s)
	}
	pct, err := strconv.ParseFloat(s[i+1:], 64)
	if err != nil {
		return fmt.Errorf("bad percentage in %q: %v", s, err)
	}
	*r = append(*r, requirement{name: s[:i], pct: pct})
	return nil
}

// stampProvenance fills the attribution block benchtrack relies on.
// Explicit flags win; otherwise commit and branch come from git. A missing
// git (exported tree, bare container) degrades attribution, never the
// document: the fields are simply left empty.
func stampProvenance(doc *Doc, commit, branch string) {
	if commit == "" {
		commit = gitOutput("rev-parse", "HEAD")
	}
	if branch == "" {
		branch = gitOutput("rev-parse", "--abbrev-ref", "HEAD")
	}
	doc.Commit = commit
	doc.Branch = branch
	doc.GoVersion = runtime.Version()
	doc.TimeUTC = time.Now().UTC().Format(time.RFC3339) //benchlint:allow clock
}

// gitOutput shells out to git, returning "" when git or the repo is absent.
func gitOutput(args ...string) string {
	out, err := exec.Command("git", args...).Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

func writeDoc(doc *Doc, path string, stdout io.Writer) error {
	if path == "-" {
		return doc.Write(stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := doc.Write(f); err != nil {
		//benchlint:allow uncheckederr — already failing; the write error wins
		f.Close()
		return err
	}
	return f.Close()
}

// compare prints per-benchmark ns/op deltas vs. the baseline and enforces
// any -require thresholds plus the memory gate. Positive improvement =
// candidate is faster.
func compare(base, cand *Doc, reqs []requirement, th benchfmt.MemThresholds, stdout, stderr io.Writer) int {
	improvements := map[string]float64{}
	fmt.Fprintf(stdout, "%-28s %14s %14s %9s %14s\n", "benchmark", "base ns/op", "new ns/op", "delta", "allocs/op")
	for _, e := range cand.Benchmarks {
		b, ok := base.Entry(e.Name)
		if !ok {
			fmt.Fprintf(stdout, "%-28s %14s %14.0f %9s %8d->%-5d\n", e.Name, "(new)", e.NsPerOp, "", 0, e.AllocsPerOp)
			continue
		}
		imp := 100 * (1 - e.NsPerOp/b.NsPerOp)
		improvements[e.Name] = imp
		fmt.Fprintf(stdout, "%-28s %14.0f %14.0f %+8.1f%% %8d->%-5d\n",
			e.Name, b.NsPerOp, e.NsPerOp, -imp, b.AllocsPerOp, e.AllocsPerOp)
	}
	failed := 0
	for _, r := range reqs {
		imp, ok := improvements[r.name]
		switch {
		case !ok:
			fmt.Fprintf(stderr, "benchjson: FAIL: %s missing from candidate or baseline\n", r.name)
			failed++
		case imp < r.pct:
			fmt.Fprintf(stderr, "benchjson: FAIL: %s improved %.1f%%, need >= %.1f%%\n", r.name, imp, r.pct)
			failed++
		default:
			fmt.Fprintf(stdout, "benchjson: PASS: %s improved %.1f%% (>= %.1f%%)\n", r.name, imp, r.pct)
		}
	}
	if th.MaxAllocGrowthPct >= 0 || th.MaxBytesGrowthPct >= 0 {
		violations := benchfmt.MemGate(base, cand, th)
		for _, v := range violations {
			fmt.Fprintf(stderr, "benchjson: FAIL: %v\n", v)
			failed++
		}
		if len(violations) == 0 {
			fmt.Fprintf(stdout, "benchjson: PASS: memory gate (alloc growth <= %.0f%% or <= %d allocs; bytes growth <= %.0f%% or <= %d B)\n",
				th.MaxAllocGrowthPct, th.AllocFloor, th.MaxBytesGrowthPct, th.BytesFloor)
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}
