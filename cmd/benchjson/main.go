// Command benchjson converts `go test -bench -benchmem` text output into a
// stable JSON document, and optionally compares it against a committed
// baseline (BENCH_vm.json) so the repo accumulates a real wall-clock perf
// trajectory alongside the simulated results.
//
// Usage:
//
//	go test ./internal/vm -bench . -benchmem | benchjson -out BENCH_vm.json
//	go test ./internal/vm -bench . -benchmem | benchjson -baseline BENCH_vm.json
//	go test ... | benchjson -baseline BENCH_vm.json -require BenchmarkDispatchArith:25
//
// Comparison prints per-benchmark ns/op deltas. Wall-clock numbers are
// host-dependent, so the compare mode is informational by default; -require
// NAME:PCT entries turn specific improvements into hard gates (exit 1 when
// the named benchmark improved by less than PCT percent vs. the baseline).
//
// Emitted documents carry a provenance block (commit SHA, branch, Go
// version, UTC timestamp — override with -commit/-branch, drop with
// -no-stamp) so cmd/benchtrack can attribute every measurement to the
// commit range it landed in without side-channel flags.
//
// Exit codes follow the repository taxonomy: 0 = pass; 1 = a -require gate
// failed; 2 = usage; 3 = unreadable/unwritable input or output.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"repro/internal/exitcode"
)

// Entry is one benchmark measurement.
type Entry struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Doc is the JSON document benchjson writes. The provenance block (commit,
// branch, go_version, time_utc) is stamped on emission so cmd/benchtrack
// can attribute the measurements to a commit without side-channel flags;
// readers tolerate docs that predate the stamp.
type Doc struct {
	Goos      string `json:"goos,omitempty"`
	Goarch    string `json:"goarch,omitempty"`
	Pkg       string `json:"pkg,omitempty"`
	CPU       string `json:"cpu,omitempty"`
	Commit    string `json:"commit,omitempty"`
	Branch    string `json:"branch,omitempty"`
	GoVersion string `json:"go_version,omitempty"`
	TimeUTC   string `json:"time_utc,omitempty"`

	Benchmarks []Entry `json:"benchmarks"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

type requirement struct {
	name string
	pct  float64
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		outPath  = fs.String("out", "", "write the parsed JSON document to this file ('-' = stdout)")
		basePath = fs.String("baseline", "", "compare against this baseline JSON document")
		commit   = fs.String("commit", "", "commit SHA to stamp into the document (default: git rev-parse HEAD)")
		branch   = fs.String("branch", "", "branch name to stamp (default: git rev-parse --abbrev-ref HEAD)")
		noStamp  = fs.Bool("no-stamp", false, "omit the provenance block (commit/branch/go version/time)")
		requires requireList
	)
	fs.Var(&requires, "require", "NAME:PCT — fail unless NAME improved by at least PCT% vs. the baseline (repeatable)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	doc, err := parse(stdin)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return exitcode.Infra
	}
	if len(doc.Benchmarks) == 0 {
		fmt.Fprintln(stderr, "benchjson: no benchmark lines found on input")
		return exitcode.Infra
	}
	if !*noStamp {
		stampProvenance(doc, *commit, *branch)
	}
	if *outPath != "" {
		if err := writeDoc(doc, *outPath, stdout); err != nil {
			fmt.Fprintln(stderr, "benchjson:", err)
			return exitcode.Infra
		}
	}
	if *basePath == "" {
		if *outPath == "" {
			// No baseline and no -out: emit the document to stdout.
			if err := writeDoc(doc, "-", stdout); err != nil {
				fmt.Fprintln(stderr, "benchjson:", err)
				return exitcode.Infra
			}
		}
		if len(requires) > 0 {
			fmt.Fprintln(stderr, "benchjson: -require needs -baseline")
			return exitcode.Usage
		}
		return exitcode.OK
	}
	base, err := readDoc(*basePath)
	if err != nil {
		fmt.Fprintln(stderr, "benchjson:", err)
		return exitcode.Infra
	}
	return compare(base, doc, requires, stdout, stderr)
}

// requireList parses repeated -require NAME:PCT flags.
type requireList []requirement

func (r *requireList) String() string { return fmt.Sprint([]requirement(*r)) }

func (r *requireList) Set(s string) error {
	i := strings.LastIndex(s, ":")
	if i < 0 {
		return fmt.Errorf("want NAME:PCT, got %q", s)
	}
	pct, err := strconv.ParseFloat(s[i+1:], 64)
	if err != nil {
		return fmt.Errorf("bad percentage in %q: %v", s, err)
	}
	*r = append(*r, requirement{name: s[:i], pct: pct})
	return nil
}

// stampProvenance fills the attribution block benchtrack relies on.
// Explicit flags win; otherwise commit and branch come from git. A missing
// git (exported tree, bare container) degrades attribution, never the
// document: the fields are simply left empty.
func stampProvenance(doc *Doc, commit, branch string) {
	if commit == "" {
		commit = gitOutput("rev-parse", "HEAD")
	}
	if branch == "" {
		branch = gitOutput("rev-parse", "--abbrev-ref", "HEAD")
	}
	doc.Commit = commit
	doc.Branch = branch
	doc.GoVersion = runtime.Version()
	doc.TimeUTC = time.Now().UTC().Format(time.RFC3339) //benchlint:allow clock
}

// gitOutput shells out to git, returning "" when git or the repo is absent.
func gitOutput(args ...string) string {
	out, err := exec.Command("git", args...).Output()
	if err != nil {
		return ""
	}
	return strings.TrimSpace(string(out))
}

// benchLine matches e.g.
// "BenchmarkDispatchArith-8   471   469526 ns/op   79336 B/op   9176 allocs/op"
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+(\d+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(r io.Reader) (*Doc, error) {
	doc := &Doc{}
	index := map[string]int{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			doc.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			doc.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			doc.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			doc.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		e := Entry{Name: m[1]}
		e.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		e.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			e.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
		}
		if m[5] != "" {
			e.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		// With -count N the same benchmark appears N times; keep the
		// fastest run. Under one-sided scheduling noise the minimum is the
		// best estimator of true cost (per the methodology papers this repo
		// reproduces, wall-clock noise only ever adds time).
		if i, ok := index[e.Name]; ok {
			if e.NsPerOp < doc.Benchmarks[i].NsPerOp {
				doc.Benchmarks[i] = e
			}
			continue
		}
		index[e.Name] = len(doc.Benchmarks)
		doc.Benchmarks = append(doc.Benchmarks, e)
	}
	return doc, sc.Err()
}

func readDoc(path string) (*Doc, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc := &Doc{}
	if err := json.Unmarshal(data, doc); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return doc, nil
}

func writeDoc(doc *Doc, path string, stdout io.Writer) error {
	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if path == "-" {
		_, err = stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// compare prints per-benchmark ns/op deltas vs. the baseline and enforces
// any -require thresholds. Positive improvement = candidate is faster.
func compare(base, cand *Doc, reqs []requirement, stdout, stderr io.Writer) int {
	byName := map[string]Entry{}
	for _, e := range base.Benchmarks {
		byName[e.Name] = e
	}
	improvements := map[string]float64{}
	fmt.Fprintf(stdout, "%-28s %14s %14s %9s %14s\n", "benchmark", "base ns/op", "new ns/op", "delta", "allocs/op")
	for _, e := range cand.Benchmarks {
		b, ok := byName[e.Name]
		if !ok {
			fmt.Fprintf(stdout, "%-28s %14s %14.0f %9s %8d->%-5d\n", e.Name, "(new)", e.NsPerOp, "", 0, e.AllocsPerOp)
			continue
		}
		imp := 100 * (1 - e.NsPerOp/b.NsPerOp)
		improvements[e.Name] = imp
		fmt.Fprintf(stdout, "%-28s %14.0f %14.0f %+8.1f%% %8d->%-5d\n",
			e.Name, b.NsPerOp, e.NsPerOp, -imp, b.AllocsPerOp, e.AllocsPerOp)
	}
	failed := 0
	for _, r := range reqs {
		imp, ok := improvements[r.name]
		switch {
		case !ok:
			fmt.Fprintf(stderr, "benchjson: FAIL: %s missing from candidate or baseline\n", r.name)
			failed++
		case imp < r.pct:
			fmt.Fprintf(stderr, "benchjson: FAIL: %s improved %.1f%%, need >= %.1f%%\n", r.name, imp, r.pct)
			failed++
		default:
			fmt.Fprintf(stdout, "benchjson: PASS: %s improved %.1f%% (>= %.1f%%)\n", r.name, imp, r.pct)
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}
