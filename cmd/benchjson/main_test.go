package main

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/vm
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDispatchArith-8   	     471	    469526 ns/op	   79336 B/op	    9176 allocs/op
BenchmarkCallFib-8         	     595	    435366 ns/op	  123320 B/op	    4323 allocs/op
BenchmarkNoMem-8           	    1000	      1234.5 ns/op
PASS
ok  	repro/internal/vm	2.124s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "repro/internal/vm" {
		t.Errorf("header = %q/%q/%q", doc.Goos, doc.Goarch, doc.Pkg)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(doc.Benchmarks))
	}
	e := doc.Benchmarks[0]
	if e.Name != "BenchmarkDispatchArith" || e.Iterations != 471 ||
		e.NsPerOp != 469526 || e.BytesPerOp != 79336 || e.AllocsPerOp != 9176 {
		t.Errorf("entry 0 = %+v", e)
	}
	if doc.Benchmarks[2].NsPerOp != 1234.5 || doc.Benchmarks[2].AllocsPerOp != 0 {
		t.Errorf("entry 2 = %+v", doc.Benchmarks[2])
	}
}

func TestRunEmitsJSON(t *testing.T) {
	var out, errB bytes.Buffer
	code := run(nil, strings.NewReader(sampleOutput), &out, &errB)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errB.String())
	}
	if !strings.Contains(out.String(), `"name": "BenchmarkCallFib"`) {
		t.Errorf("JSON output missing benchmark entry:\n%s", out.String())
	}
}

func TestCompareRequire(t *testing.T) {
	base := &Doc{Benchmarks: []Entry{
		{Name: "BenchmarkDispatchArith", NsPerOp: 1000},
		{Name: "BenchmarkCallFib", NsPerOp: 1000},
	}}
	cand := &Doc{Benchmarks: []Entry{
		{Name: "BenchmarkDispatchArith", NsPerOp: 700}, // 30% faster
		{Name: "BenchmarkCallFib", NsPerOp: 950},       // 5% faster
	}}
	var out, errB bytes.Buffer
	code := compare(base, cand, []requirement{{name: "BenchmarkDispatchArith", pct: 25}}, &out, &errB)
	if code != 0 {
		t.Fatalf("expected pass, got %d: %s", code, errB.String())
	}
	out.Reset()
	errB.Reset()
	code = compare(base, cand, []requirement{{name: "BenchmarkCallFib", pct: 25}}, &out, &errB)
	if code != 1 {
		t.Fatalf("expected fail, got %d", code)
	}
	if !strings.Contains(errB.String(), "BenchmarkCallFib") {
		t.Errorf("failure message missing name: %s", errB.String())
	}
}

func TestRequireFlagParsing(t *testing.T) {
	var r requireList
	if err := r.Set("BenchmarkX:25"); err != nil {
		t.Fatal(err)
	}
	if len(r) != 1 || r[0].name != "BenchmarkX" || r[0].pct != 25 {
		t.Errorf("parsed %+v", r)
	}
	if err := r.Set("nocolon"); err == nil {
		t.Error("expected error for missing colon")
	}
}

func TestStampProvenance(t *testing.T) {
	var out, errB bytes.Buffer
	code := run([]string{"-commit", "abc123", "-branch", "perf-work"},
		strings.NewReader(sampleOutput), &out, &errB)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errB.String())
	}
	s := out.String()
	if !strings.Contains(s, `"commit": "abc123"`) || !strings.Contains(s, `"branch": "perf-work"`) {
		t.Errorf("provenance flags not stamped:\n%s", s)
	}
	if !strings.Contains(s, `"go_version": "go`) || !strings.Contains(s, `"time_utc": "`) {
		t.Errorf("go version / timestamp not stamped:\n%s", s)
	}
}

func TestNoStampOmitsProvenance(t *testing.T) {
	var out, errB bytes.Buffer
	code := run([]string{"-no-stamp"}, strings.NewReader(sampleOutput), &out, &errB)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errB.String())
	}
	if strings.Contains(out.String(), `"commit"`) || strings.Contains(out.String(), `"time_utc"`) {
		t.Errorf("-no-stamp leaked provenance:\n%s", out.String())
	}
}

// A baseline written before the provenance stamp existed must still load
// and compare (the committed BENCH_vm.json predates the stamp).
func TestCompareToleratesUnstampedBaseline(t *testing.T) {
	base := &Doc{Benchmarks: []Entry{{Name: "BenchmarkDispatchArith", NsPerOp: 1000}}}
	cand := &Doc{Commit: "abc", Benchmarks: []Entry{{Name: "BenchmarkDispatchArith", NsPerOp: 900}}}
	var out, errB bytes.Buffer
	if code := compare(base, cand, nil, &out, &errB); code != 0 {
		t.Fatalf("exit %d: %s", code, errB.String())
	}
}
