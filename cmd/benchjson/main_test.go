package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/benchfmt"
)

// gateOff disables the memory gate for the ns/op-focused compare tests.
var gateOff = benchfmt.MemThresholds{MaxAllocGrowthPct: -1, MaxBytesGrowthPct: -1}

const sampleOutput = `goos: linux
goarch: amd64
pkg: repro/internal/vm
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDispatchArith-8   	     471	    469526 ns/op	   79336 B/op	    9176 allocs/op
BenchmarkCallFib-8         	     595	    435366 ns/op	  123320 B/op	    4323 allocs/op
BenchmarkNoMem-8           	    1000	      1234.5 ns/op
PASS
ok  	repro/internal/vm	2.124s
`

func TestParse(t *testing.T) {
	doc, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" || doc.Pkg != "repro/internal/vm" {
		t.Errorf("header = %q/%q/%q", doc.Goos, doc.Goarch, doc.Pkg)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(doc.Benchmarks))
	}
	e := doc.Benchmarks[0]
	if e.Name != "BenchmarkDispatchArith" || e.Iterations != 471 ||
		e.NsPerOp != 469526 || e.BytesPerOp != 79336 || e.AllocsPerOp != 9176 {
		t.Errorf("entry 0 = %+v", e)
	}
	if doc.Benchmarks[2].NsPerOp != 1234.5 || doc.Benchmarks[2].AllocsPerOp != 0 {
		t.Errorf("entry 2 = %+v", doc.Benchmarks[2])
	}
}

func TestRunEmitsJSON(t *testing.T) {
	var out, errB bytes.Buffer
	code := run(nil, strings.NewReader(sampleOutput), &out, &errB)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errB.String())
	}
	if !strings.Contains(out.String(), `"name": "BenchmarkCallFib"`) {
		t.Errorf("JSON output missing benchmark entry:\n%s", out.String())
	}
}

func TestCompareRequire(t *testing.T) {
	base := &Doc{Benchmarks: []Entry{
		{Name: "BenchmarkDispatchArith", NsPerOp: 1000},
		{Name: "BenchmarkCallFib", NsPerOp: 1000},
	}}
	cand := &Doc{Benchmarks: []Entry{
		{Name: "BenchmarkDispatchArith", NsPerOp: 700}, // 30% faster
		{Name: "BenchmarkCallFib", NsPerOp: 950},       // 5% faster
	}}
	var out, errB bytes.Buffer
	code := compare(base, cand, []requirement{{name: "BenchmarkDispatchArith", pct: 25}}, gateOff, &out, &errB)
	if code != 0 {
		t.Fatalf("expected pass, got %d: %s", code, errB.String())
	}
	out.Reset()
	errB.Reset()
	code = compare(base, cand, []requirement{{name: "BenchmarkCallFib", pct: 25}}, gateOff, &out, &errB)
	if code != 1 {
		t.Fatalf("expected fail, got %d", code)
	}
	if !strings.Contains(errB.String(), "BenchmarkCallFib") {
		t.Errorf("failure message missing name: %s", errB.String())
	}
}

func TestRequireFlagParsing(t *testing.T) {
	var r requireList
	if err := r.Set("BenchmarkX:25"); err != nil {
		t.Fatal(err)
	}
	if len(r) != 1 || r[0].name != "BenchmarkX" || r[0].pct != 25 {
		t.Errorf("parsed %+v", r)
	}
	if err := r.Set("nocolon"); err == nil {
		t.Error("expected error for missing colon")
	}
}

func TestStampProvenance(t *testing.T) {
	var out, errB bytes.Buffer
	code := run([]string{"-commit", "abc123", "-branch", "perf-work"},
		strings.NewReader(sampleOutput), &out, &errB)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errB.String())
	}
	s := out.String()
	if !strings.Contains(s, `"commit": "abc123"`) || !strings.Contains(s, `"branch": "perf-work"`) {
		t.Errorf("provenance flags not stamped:\n%s", s)
	}
	if !strings.Contains(s, `"go_version": "go`) || !strings.Contains(s, `"time_utc": "`) {
		t.Errorf("go version / timestamp not stamped:\n%s", s)
	}
}

func TestNoStampOmitsProvenance(t *testing.T) {
	var out, errB bytes.Buffer
	code := run([]string{"-no-stamp"}, strings.NewReader(sampleOutput), &out, &errB)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errB.String())
	}
	if strings.Contains(out.String(), `"commit"`) || strings.Contains(out.String(), `"time_utc"`) {
		t.Errorf("-no-stamp leaked provenance:\n%s", out.String())
	}
}

// A baseline written before the provenance stamp existed must still load
// and compare (the committed BENCH_vm.json predates the stamp).
func TestCompareToleratesUnstampedBaseline(t *testing.T) {
	base := &Doc{Benchmarks: []Entry{{Name: "BenchmarkDispatchArith", NsPerOp: 1000}}}
	cand := &Doc{Commit: "abc", Benchmarks: []Entry{{Name: "BenchmarkDispatchArith", NsPerOp: 900}}}
	var out, errB bytes.Buffer
	if code := compare(base, cand, nil, gateOff, &out, &errB); code != 0 {
		t.Fatalf("exit %d: %s", code, errB.String())
	}
}

// writeBaseline marshals a doc to a temp file and returns its path.
func writeBaseline(t *testing.T, doc *Doc) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "base.json")
	var buf bytes.Buffer
	if err := doc.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// The memory gate end to end through the CLI: the sample output's 9176
// allocs/op against a 4000-alloc baseline is a clear regression; the same
// numbers pass once the gate is off or the baseline matches.
func TestRunMemoryGate(t *testing.T) {
	lean := writeBaseline(t, &Doc{Benchmarks: []Entry{
		{Name: "BenchmarkDispatchArith", NsPerOp: 400000, BytesPerOp: 79336, AllocsPerOp: 4000},
	}})
	var out, errB bytes.Buffer
	code := run([]string{"-no-stamp", "-baseline", lean, "-max-alloc-growth", "10"},
		strings.NewReader(sampleOutput), &out, &errB)
	if code != 1 {
		t.Fatalf("alloc regression should exit 1, got %d\nstdout: %s", code, out.String())
	}
	if !strings.Contains(errB.String(), "allocs/op grew 4000 -> 9176") {
		t.Errorf("missing violation detail: %s", errB.String())
	}

	match := writeBaseline(t, &Doc{Benchmarks: []Entry{
		{Name: "BenchmarkDispatchArith", NsPerOp: 400000, BytesPerOp: 79336, AllocsPerOp: 9176},
	}})
	out.Reset()
	errB.Reset()
	code = run([]string{"-no-stamp", "-baseline", match, "-max-alloc-growth", "10", "-max-bytes-growth", "25"},
		strings.NewReader(sampleOutput), &out, &errB)
	if code != 0 {
		t.Fatalf("matching baseline should pass, got %d: %s", code, errB.String())
	}
	if !strings.Contains(out.String(), "PASS: memory gate") {
		t.Errorf("missing gate verdict: %s", out.String())
	}
}

// The memory gates require a baseline, like -require.
func TestMemoryGateNeedsBaseline(t *testing.T) {
	var out, errB bytes.Buffer
	code := run([]string{"-no-stamp", "-max-alloc-growth", "10"},
		strings.NewReader(sampleOutput), &out, &errB)
	if code != 2 {
		t.Fatalf("want usage exit 2, got %d", code)
	}
}
