// Command tracecheck validates that a file is schema-valid Chrome
// trace-event JSON as emitted by pybench -trace. It exits 0 and reports the
// event count on success, non-zero with a diagnostic otherwise; `make
// bench-smoke` uses it to prove the emitted trace actually parses.
//
// Usage:
//
//	tracecheck FILE [FILE...]
package main

import (
	"fmt"
	"os"

	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck FILE [FILE...]")
		os.Exit(2)
	}
	failed := false
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			failed = true
			continue
		}
		n, err := trace.Validate(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			failed = true
			continue
		}
		fmt.Printf("%s: ok (%d events)\n", path, n)
	}
	if failed {
		os.Exit(1)
	}
}
