// Command tracecheck validates that a file is schema-valid Chrome
// trace-event JSON as emitted by pybench -trace. It exits 0 and reports the
// event count on success; `make bench-smoke` uses it to prove the emitted
// trace actually parses. Exit codes follow the repository taxonomy:
// 1 = a file failed validation, 2 = usage, 3 = a file could not be read.
//
// Usage:
//
//	tracecheck FILE [FILE...]
package main

import (
	"fmt"
	"os"

	"repro/internal/exitcode"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck FILE [FILE...]")
		os.Exit(exitcode.Usage)
	}
	unreadable, invalid := false, false
	for _, path := range os.Args[1:] {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "tracecheck:", err)
			unreadable = true
			continue
		}
		n, err := trace.Validate(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			invalid = true
			continue
		}
		fmt.Printf("%s: ok (%d events)\n", path, n)
	}
	switch {
	case unreadable:
		os.Exit(exitcode.Infra)
	case invalid:
		os.Exit(exitcode.Finding)
	}
}
