// Package client is the typed Go client of the pybenchd control API: it
// submits campaign specifications, follows their SSE progress streams, and
// retrieves final results as the same harness.Result values the in-process
// harness produces — so a remote campaign plugs into the statistics layer
// exactly like a local one. `pybench -daemon-addr` is built on this
// package, and the daemon-smoke CI job drives it end to end.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/controlapi"
	"repro/internal/exitcode"
)

// Re-exported control-API types: the client's vocabulary is the server's.
type (
	// CampaignSpec describes a campaign submission.
	CampaignSpec = controlapi.CampaignSpec
	// CampaignStatus is a campaign's wire status (results when terminal).
	CampaignStatus = controlapi.CampaignStatus
	// Event is one progress-stream entry.
	Event = controlapi.Event
	// Health is the daemon liveness report.
	Health = controlapi.Health
	// State is a campaign lifecycle state.
	State = controlapi.State
)

// APIError is a non-2xx response decoded into the control API's error
// envelope. It implements the exit-code mapping so CLIs propagate the
// taxonomy without inspecting HTTP statuses themselves.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Taxonomy is the exit-code taxonomy name ("usage", "infrastructure"…).
	Taxonomy string
	// Message is the server's failure description.
	Message string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("daemon: %s (HTTP %d, %s)", e.Message, e.Status, e.Taxonomy)
}

// ExitCode maps the failure onto the repository exit-code taxonomy.
func (e *APIError) ExitCode() int { return controlapi.ExitCode(e.Status) }

// CampaignError reports a campaign that reached a terminal state other
// than done. The partial status (with any surviving results) rides along.
type CampaignError struct {
	Status *CampaignStatus
}

func (e *CampaignError) Error() string {
	msg := fmt.Sprintf("daemon: campaign %s %s", e.Status.ID, e.Status.State)
	if e.Status.Error != "" {
		msg += ": " + e.Status.Error
	}
	return msg
}

// ExitCode maps the outcome onto the exit-code taxonomy (degraded → 4 …).
func (e *CampaignError) ExitCode() int { return e.Status.State.ExitCode() }

// Client talks to one pybenchd instance.
type Client struct {
	base   string
	tenant string
	hc     *http.Client
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the transport (tests, timeouts).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithTenant attributes submissions to a tenant via the quota header.
func WithTenant(tenant string) Option { return func(c *Client) { c.tenant = tenant } }

// New returns a client for the daemon at addr — a host:port pair or a full
// http:// base URL.
func New(addr string, opts ...Option) *Client {
	base := addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	c := &Client{base: strings.TrimRight(base, "/"), hc: http.DefaultClient}
	for _, o := range opts {
		o(c)
	}
	return c
}

// do issues one request and decodes the JSON response into out (ignored
// when nil). Non-2xx responses become *APIError.
func (c *Client) do(ctx context.Context, method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("client: encoding request: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return fmt.Errorf("client: building request: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if c.tenant != "" {
		req.Header.Set(controlapi.TenantHeader, c.tenant)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer func() {
		//benchlint:allow uncheckederr — response body cleanup
		resp.Body.Close()
	}()
	if resp.StatusCode >= 400 {
		return decodeAPIError(resp)
	}
	if out == nil {
		return nil
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return fmt.Errorf("client: decoding %s %s response: %w", method, path, err)
	}
	return nil
}

// decodeAPIError turns an error response into *APIError, surviving
// non-JSON bodies (proxies, panics) with the raw text.
func decodeAPIError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16)) //benchlint:allow uncheckederr — best-effort error body
	var envelope struct {
		Error controlapi.APIError `json:"error"`
	}
	if err := json.Unmarshal(data, &envelope); err == nil && envelope.Error.Message != "" {
		return &APIError{
			Status:   resp.StatusCode,
			Taxonomy: envelope.Error.Taxonomy,
			Message:  envelope.Error.Message,
		}
	}
	return &APIError{
		Status:   resp.StatusCode,
		Taxonomy: exitcode.String(controlapi.ExitCode(resp.StatusCode)),
		Message:  strings.TrimSpace(string(data)),
	}
}

// Health reports daemon liveness and drain state.
func (c *Client) Health(ctx context.Context) (Health, error) {
	var h Health
	err := c.do(ctx, http.MethodGet, "/api/v1/healthz", nil, &h)
	return h, err
}

// Submit enqueues a campaign and returns its accepted status (state
// "queued", durable in the daemon's ledger).
func (c *Client) Submit(ctx context.Context, spec CampaignSpec) (*CampaignStatus, error) {
	var st CampaignStatus
	if err := c.do(ctx, http.MethodPost, "/api/v1/campaigns", spec, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Get fetches a campaign's status; terminal campaigns carry results.
func (c *Client) Get(ctx context.Context, id string) (*CampaignStatus, error) {
	var st CampaignStatus
	if err := c.do(ctx, http.MethodGet, "/api/v1/campaigns/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// List fetches every campaign the daemon knows (no results attached).
func (c *Client) List(ctx context.Context) ([]CampaignStatus, error) {
	var out []CampaignStatus
	if err := c.do(ctx, http.MethodGet, "/api/v1/campaigns", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Cancel cancels a queued or running campaign.
func (c *Client) Cancel(ctx context.Context, id string) (*CampaignStatus, error) {
	var st CampaignStatus
	if err := c.do(ctx, http.MethodDelete, "/api/v1/campaigns/"+id, nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// Stream follows a campaign's SSE event stream from position `from`,
// invoking fn for every event until the stream ends (campaign terminal),
// fn returns an error (propagated), or ctx is cancelled.
func (c *Client) Stream(ctx context.Context, id string, from int, fn func(Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		fmt.Sprintf("%s/api/v1/campaigns/%s/events?from=%d", c.base, id, from), nil)
	if err != nil {
		return fmt.Errorf("client: building stream request: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	resp, err := c.hc.Do(req)
	if err != nil {
		return fmt.Errorf("client: streaming %s: %w", id, err)
	}
	defer func() {
		//benchlint:allow uncheckederr — response body cleanup
		resp.Body.Close()
	}()
	if resp.StatusCode >= 400 {
		return decodeAPIError(resp)
	}
	return parseSSE(resp.Body, fn)
}

// parseSSE decodes a text/event-stream body into Events. Only the fields
// the daemon emits (id, event, data) are interpreted; unknown lines are
// skipped per the SSE contract.
func parseSSE(r io.Reader, fn func(Event) error) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var ev Event
	var haveData bool
	flush := func() error {
		if !haveData {
			ev = Event{}
			return nil
		}
		e := ev
		ev, haveData = Event{}, false
		return fn(e)
	}
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if err := flush(); err != nil {
				return err
			}
		case strings.HasPrefix(line, "id: "):
			if n, err := strconv.Atoi(line[4:]); err == nil {
				ev.Seq = n
			}
		case strings.HasPrefix(line, "event: "):
			ev.Type = line[7:]
		case strings.HasPrefix(line, "data: "):
			ev.Data = json.RawMessage(line[6:])
			haveData = true
		}
	}
	if err := flush(); err != nil {
		return err
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("client: reading event stream: %w", err)
	}
	return nil
}

// Wait follows the campaign's event stream to its terminal state, then
// fetches and returns the final status. A terminal state other than done
// is returned as *CampaignError (carrying the partial status), so callers
// can both report and propagate the taxonomy exit code. onEvent, when
// non-nil, observes every streamed event along the way.
func (c *Client) Wait(ctx context.Context, id string, onEvent func(Event)) (*CampaignStatus, error) {
	err := c.Stream(ctx, id, 0, func(ev Event) error {
		if onEvent != nil {
			onEvent(ev)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	st, err := c.Get(ctx, id)
	if err != nil {
		return nil, err
	}
	if !st.State.Terminal() {
		// The stream ended without a terminal state: the daemon crashed or
		// drained under us. Infrastructure, not an outcome.
		return st, &APIError{
			Status:   http.StatusServiceUnavailable,
			Taxonomy: exitcode.String(exitcode.Infra),
			Message:  fmt.Sprintf("campaign %s stream ended in state %s", id, st.State),
		}
	}
	if st.State != controlapi.StateDone {
		return st, &CampaignError{Status: st}
	}
	return st, nil
}
