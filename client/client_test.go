package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/controlapi"
	"repro/internal/exitcode"
)

// startDaemon runs a real control-plane server behind httptest and
// returns a client pointed at it.
func startDaemon(t *testing.T, mutate func(*controlapi.Options)) (*controlapi.Server, *Client) {
	t.Helper()
	opts := controlapi.Options{DataDir: t.TempDir()}
	if mutate != nil {
		mutate(&opts)
	}
	s, err := controlapi.New(opts)
	if err != nil {
		t.Fatalf("controlapi.New: %v", err)
	}
	s.Start()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, New(ts.URL, WithTenant("client-test"))
}

func tinySpec() CampaignSpec {
	return CampaignSpec{
		Benchmarks:  []string{"fib"},
		Invocations: 2,
		Iterations:  3,
		Seed:        42,
		Noise:       "quiet",
	}
}

// TestSubmitWaitGet drives the happy path end to end: submit, stream to
// the terminal state, fetch results, and observe progress events.
func TestSubmitWaitGet(t *testing.T) {
	_, cl := startDaemon(t, nil)
	ctx := context.Background()

	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	if h.State != "serving" {
		t.Fatalf("health = %+v", h)
	}

	st, err := cl.Submit(ctx, tinySpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.Tenant != "client-test" {
		t.Errorf("tenant header not applied: %+v", st)
	}

	var seen []string
	final, err := cl.Wait(ctx, st.ID, func(ev Event) { seen = append(seen, ev.Type) })
	if err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if final.State != controlapi.StateDone || len(final.Results) != 1 {
		t.Fatalf("final = state %s, %d results", final.State, len(final.Results))
	}
	if final.Results[0].Invocations[0].Checksum != "1597" {
		t.Errorf("fib checksum = %q", final.Results[0].Invocations[0].Checksum)
	}
	var states, benches int
	for _, typ := range seen {
		switch typ {
		case controlapi.EventState:
			states++
		case controlapi.EventBenchmark:
			benches++
		}
	}
	if states < 3 || benches != 2 {
		t.Errorf("event mix: %d state, %d benchmark (want >=3, 2): %v", states, benches, seen)
	}

	list, err := cl.List(ctx)
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}
}

// TestAPIErrorDecoding checks that server rejections surface as *APIError
// with the taxonomy exit code a CLI should propagate.
func TestAPIErrorDecoding(t *testing.T) {
	_, cl := startDaemon(t, nil)
	ctx := context.Background()

	spec := tinySpec()
	spec.Benchmarks = []string{"no-such-benchmark"}
	_, err := cl.Submit(ctx, spec)
	var apiErr *APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("want *APIError, got %T: %v", err, err)
	}
	if apiErr.Status != 400 || apiErr.ExitCode() != exitcode.Usage {
		t.Fatalf("apiErr = %+v (exit %d)", apiErr, apiErr.ExitCode())
	}
	if !strings.Contains(apiErr.Message, "no-such-benchmark") {
		t.Errorf("message = %q", apiErr.Message)
	}

	if _, err := cl.Get(ctx, "c999999"); err == nil {
		t.Fatal("Get of unknown id must error")
	} else if !errors.As(err, &apiErr) || apiErr.ExitCode() != exitcode.Usage {
		t.Fatalf("unknown-id error = %v", err)
	}
}

// TestWaitDegradedCampaign checks the outcome taxonomy: a campaign that
// finishes below quorum comes back as *CampaignError with exit 4 and the
// partial results attached.
func TestWaitDegradedCampaign(t *testing.T) {
	_, cl := startDaemon(t, nil)
	ctx := context.Background()
	spec := tinySpec()
	spec.Invocations = 3
	spec.Faults = "panic=1.0" // every attempt dies; quorum is unreachable
	spec.Quorum = 1
	st, err := cl.Submit(ctx, spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	final, err := cl.Wait(ctx, st.ID, nil)
	var ce *CampaignError
	if !errors.As(err, &ce) {
		t.Fatalf("want *CampaignError, got %T: %v", err, err)
	}
	if ce.ExitCode() != exitcode.Degraded || final.State != controlapi.StateDegraded {
		t.Fatalf("state %s exit %d, want degraded/4", final.State, ce.ExitCode())
	}
}

// TestCancelViaClient cancels a queued campaign on a drained server (no
// executor will pick it up) and verifies the terminal state round-trips.
func TestCancelViaClient(t *testing.T) {
	s, cl := startDaemon(t, func(o *controlapi.Options) { o.Slots = 1 })
	ctx := context.Background()
	// Park the only executor on a long campaign so the next one stays queued.
	long := tinySpec()
	long.Benchmarks = []string{"fib", "nbody", "spectralnorm"}
	long.Invocations = 6
	long.Iterations = 60
	blocker, err := cl.Submit(ctx, long)
	if err != nil {
		t.Fatal(err)
	}
	queued, err := cl.Submit(ctx, tinySpec())
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Cancel(ctx, queued.ID)
	if err != nil {
		t.Fatalf("Cancel: %v", err)
	}
	if got.State != controlapi.StateCancelled {
		t.Fatalf("cancelled state = %s", got.State)
	}
	if _, err := cl.Cancel(ctx, blocker.ID); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	if _, err := cl.Wait(ctx, blocker.ID, nil); err == nil {
		t.Fatal("waiting on a cancelled campaign must error")
	}
	_ = s
}

// TestParseSSE pins the client-side SSE framing against hand-built input,
// including multi-event bodies and ignored unknown lines.
func TestParseSSE(t *testing.T) {
	body := "retry: 100\n" +
		"id: 0\nevent: state\ndata: {\"state\":\"queued\"}\n\n" +
		"id: 1\nevent: benchmark\ndata: {\"benchmark\":\"fib\"}\n\n"
	var got []Event
	err := parseSSE(strings.NewReader(body), func(ev Event) error {
		got = append(got, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].Seq != 0 || got[0].Type != "state" || got[1].Seq != 1 || got[1].Type != "benchmark" {
		t.Fatalf("parsed = %+v", got)
	}
	var payload struct {
		Benchmark string `json:"benchmark"`
	}
	if err := json.Unmarshal(got[1].Data, &payload); err != nil || payload.Benchmark != "fib" {
		t.Fatalf("payload = %+v, %v", payload, err)
	}
}
