// methodology-comparison: show, on one benchmark, how often each
// benchmarking methodology reaches a misleading conclusion as a function of
// the true effect size — the heart of the paper's argument.
//
//	go run ./examples/methodology-comparison
package main

import (
	"fmt"
	"log"

	"repro/internal/harness"
	"repro/internal/methodology"
	"repro/internal/noise"
	"repro/internal/report"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	// Build a real warmup profile from the suite's nbody benchmark.
	b, ok := workloads.ByName("nbody")
	if !ok {
		log.Fatal("nbody missing from suite")
	}
	runner := harness.NewRunner()
	res, err := runner.Run(b, harness.Options{
		Mode:        vm.ModeInterp,
		Invocations: 1,
		Iterations:  30,
		Noise:       noise.None(),
	})
	if err != nil {
		log.Fatal(err)
	}
	baseline := methodology.TrialGenerator{
		Base:  res.Invocations[0].TimesSec,
		Noise: noise.Default(),
	}

	const (
		invocations = 10
		iterations  = 30
		trials      = 100
		equivBand   = 0.01
	)
	effects := []float64{0, 0.01, 0.02, 0.05, 0.10}

	t := report.NewTable(
		"Wrong-conclusion rate (%) by methodology and true effect",
		"methodology", "0%", "1%", "2%", "5%", "10%")
	for _, m := range methodology.All(1) {
		row := []interface{}{m.Name()}
		for _, eff := range effects {
			treatment := baseline.Scaled(1 + eff)
			er := methodology.EvaluateMethodology(m, baseline, treatment,
				invocations, iterations, trials, equivBand, uint64(1000*eff)+7)
			wrong := 100 * float64(er.Misleading+er.Missed) / float64(er.Trials)
			row = append(row, fmt.Sprintf("%.0f", wrong))
		}
		t.AddRow(row...)
	}
	fmt.Print(t.String())
	fmt.Println()
	fmt.Println("Columns are the true speedup injected into the synthetic treatment.")
	fmt.Println("Naive methodologies claim differences that do not exist (left columns)")
	fmt.Println("and the rigorous methodology only errs near the equivalence boundary.")
}
