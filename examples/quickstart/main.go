// Quickstart: compile a MiniPy workload, run it under both engines with the
// rigorous methodology, and print a statistically sound comparison.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/harness"
	"repro/internal/methodology"
	"repro/internal/noise"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	// 1. Pick a workload. Any MiniPy program with a run() function works;
	// here we define one inline instead of using the built-in suite.
	bench := workloads.Benchmark{
		Name:        "sum-of-squares",
		Description: "toy hot loop",
		Class:       workloads.ClassNumeric,
		Source: `
def run():
    total = 0
    for i in range(3000):
        total += i * i
    return total
`,
	}

	// 2. Run the rigorous experiment design: multiple fresh VM invocations,
	// multiple iterations each, on a simulated noisy machine.
	runner := harness.NewRunner()
	opts := harness.Options{
		Invocations: 10,
		Iterations:  30,
		Seed:        42,
		Noise:       noise.Default(),
	}
	interp, jit, err := runner.RunPair(bench, opts)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Analyze: warmup-aware, invocation-level, with a bootstrap CI.
	rig := methodology.Rigorous{Confidence: 0.95, Seed: 1}
	cmp := rig.Compare(interp.Hierarchical(), jit.Hierarchical())

	fmt.Printf("benchmark: %s (checksum %s)\n", bench.Name, interp.Invocations[0].Checksum)
	fmt.Printf("interpreter mean: %.3f ms\n",
		1e3*stats.Mean(interp.Hierarchical().InvocationMeans()))
	fmt.Printf("JIT mean:         %.3f ms\n",
		1e3*stats.Mean(jit.Hierarchical().InvocationMeans()))
	fmt.Printf("JIT speedup: %.2fx  (95%% CI [%.2f, %.2f])  verdict: %s\n",
		cmp.Speedup, cmp.CI.Lo, cmp.CI.Hi, cmp.Verdict)
	fmt.Printf("warmup iterations excluded per invocation: up to %d\n", cmp.WarmupDropped)

	// 4. Contrast with what a naive single run would have reported.
	naive := methodology.SingleRun{}.Compare(interp.Hierarchical(), jit.Hierarchical())
	fmt.Printf("naive single-run estimate: %.2fx (no CI, first iterations only)\n", naive.Speedup)
}
