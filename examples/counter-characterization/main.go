// counter-characterization: run the suite on the interpreter with the
// simulated hardware-counter model attached and print the
// microarchitectural characterization — IPC, cache and branch MPKI, and
// the top-down bound breakdown.
//
//	go run ./examples/counter-characterization
package main

import (
	"fmt"
	"log"

	"repro/internal/harness"
	"repro/internal/noise"
	"repro/internal/report"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	runner := harness.NewRunner()
	t := report.NewTable("Microarchitectural characterization (interpreter)",
		"benchmark", "IPC", "L1 MPKI", "br MPKI", "disp miss%",
		"retiring%", "frontend%", "badspec%", "backend%")
	var worstDispatch, bestIPC string
	var worstDispatchVal, bestIPCVal float64
	for _, b := range workloads.Suite() {
		res, err := runner.Run(b, harness.Options{
			Mode:         vm.ModeInterp,
			Invocations:  1,
			Iterations:   3,
			Noise:        noise.None(),
			WithCounters: true,
		})
		if err != nil {
			log.Fatal(err)
		}
		s := res.Invocations[0].Counters
		t.AddRow(b.Name, s.IPC, s.L1MPKI, s.BranchMPKI,
			fmt.Sprintf("%.1f", 100*s.DispatchMiss),
			fmt.Sprintf("%.1f", 100*s.Retiring),
			fmt.Sprintf("%.1f", 100*s.FrontendBound),
			fmt.Sprintf("%.1f", 100*s.BadSpecBound),
			fmt.Sprintf("%.1f", 100*s.BackendBound))
		if s.DispatchMiss > worstDispatchVal {
			worstDispatchVal, worstDispatch = s.DispatchMiss, b.Name
		}
		if s.IPC > bestIPCVal {
			bestIPCVal, bestIPC = s.IPC, b.Name
		}
	}
	fmt.Print(t.String())
	fmt.Println()
	fmt.Printf("Highest IPC: %s (%.2f) — regular numeric kernels keep the pipeline fed.\n",
		bestIPC, bestIPCVal)
	fmt.Printf("Worst dispatch predictability: %s (%.0f%% miss) — irregular opcode\n",
		worstDispatch, 100*worstDispatchVal)
	fmt.Println("sequences are why bytecode interpreters are frontend/branch bound.")
}
