// adaptive-precision: demonstrate the two extensions of the rigorous
// methodology — the adaptive sequential design ("benchmark until the CI is
// tight enough, then stop") and suite-level comparison with family-wise
// error control (Holm–Bonferroni).
//
//	go run ./examples/adaptive-precision
package main

import (
	"fmt"
	"log"

	"repro/internal/harness"
	"repro/internal/methodology"
	"repro/internal/noise"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	runner := harness.NewRunner()

	// Part 1: adaptive precision on three machines.
	fmt.Println("Adaptive design: invocations needed for a ±1% CI on 'collatz'")
	fmt.Println("--------------------------------------------------------------")
	machines := []struct {
		name string
		p    noise.Params
	}{
		{"quiet lab machine ", noise.Quiet()},
		{"default desktop   ", noise.Default()},
		{"noisy CI runner   ", noise.Noisy()},
	}
	b, _ := workloads.ByName("collatz")
	for _, m := range machines {
		res, err := runner.RunAdaptive(b, harness.AdaptiveOptions{
			Base: harness.Options{
				Invocations: 5, Iterations: 20, Seed: 11, Noise: m.p,
			},
			TargetRelHalfWidth: 0.01,
			MaxInvocations:     80,
		})
		if err != nil {
			log.Fatal(err)
		}
		status := "converged"
		if !res.Converged {
			status = "budget exhausted"
		}
		fmt.Printf("%s %3d invocations, CI ±%.2f%%  (%s)\n",
			m.name, len(res.Result.Invocations), 100*res.CI.RelHalfWidth(), status)
	}

	// Part 2: suite comparison with family-wise error control.
	fmt.Println()
	fmt.Println("Suite comparison (interp vs JIT) with Holm–Bonferroni correction")
	fmt.Println("-----------------------------------------------------------------")
	suite := workloads.Suite()[:8] // keep the example quick
	var names []string
	var baselines, treatments []stats.HierarchicalSample
	for _, wl := range suite {
		interp, jit, err := runner.RunPair(wl, harness.Options{
			Invocations: 8, Iterations: 20, Seed: 21, Noise: noise.Default(),
		})
		if err != nil {
			log.Fatal(err)
		}
		names = append(names, wl.Name)
		baselines = append(baselines, interp.Hierarchical())
		treatments = append(treatments, jit.Hierarchical())
	}
	results := methodology.CompareSuite(names, baselines, treatments,
		methodology.Rigorous{Seed: 5}, 0.05)
	t := report.NewTable("", "benchmark", "speedup", "p-value", "verdict (Holm-adjusted)")
	for _, r := range results {
		t.AddRow(r.Benchmark, r.Speedup, r.PValue, r.Verdict.String())
	}
	fmt.Print(t.String())
	fmt.Println()
	fmt.Println("Verdicts that do not survive the family-wise correction are")
	fmt.Println("downgraded to indistinguishable — claiming 16 'significant'")
	fmt.Println("results at per-benchmark alpha inflates the suite-level error.")
}
