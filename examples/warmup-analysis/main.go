// warmup-analysis: reproduce the paper's warmup study on the built-in
// suite — per-iteration timing curves, changepoint detection, and the
// steady-state taxonomy (flat / warmup / slowdown / no steady state /
// inconsistent).
//
//	go run ./examples/warmup-analysis
package main

import (
	"fmt"
	"log"

	"repro/internal/harness"
	"repro/internal/methodology"
	"repro/internal/noise"
	"repro/internal/report"
	"repro/internal/stats"
	"repro/internal/vm"
	"repro/internal/workloads"
)

func main() {
	runner := harness.NewRunner()

	fmt.Println("Per-iteration warmup curves (noise-free, JIT engine)")
	fmt.Println("----------------------------------------------------")
	for _, name := range []string{"nbody", "richards", "branchy"} {
		b, ok := workloads.ByName(name)
		if !ok {
			log.Fatalf("unknown benchmark %s", name)
		}
		res, err := runner.Run(b, harness.Options{
			Mode:        vm.ModeJIT,
			Invocations: 1,
			Iterations:  40,
			Noise:       noise.None(),
		})
		if err != nil {
			log.Fatal(err)
		}
		series := res.Invocations[0].TimesSec
		// Normalize to the steady tail so curves are comparable.
		tail := stats.Mean(series[len(series)/2:])
		norm := make([]float64, len(series))
		for i, v := range series {
			norm[i] = v / tail
		}
		cls := stats.ClassifySteadyState(norm, 0, 0, 0)
		fmt.Printf("%-10s %s  class=%s steady@%d (first/steady = %.2fx, traces=%d)\n",
			name, report.Sparkline(norm), cls.Class, cls.SteadyStart,
			norm[0], res.Invocations[0].JITTraces)
	}

	fmt.Println()
	fmt.Println("Cross-invocation steady-state taxonomy (noisy machine)")
	fmt.Println("------------------------------------------------------")
	t := report.NewTable("", "benchmark", "interp", "jit")
	for _, b := range workloads.Suite() {
		row := []interface{}{b.Name}
		for _, mode := range []vm.Mode{vm.ModeInterp, vm.ModeJIT} {
			res, err := runner.Run(b, harness.Options{
				Mode:        mode,
				Invocations: 6,
				Iterations:  50,
				Seed:        7,
				Noise:       noise.Default(),
			})
			if err != nil {
				log.Fatal(err)
			}
			rep := methodology.ClassifyExperiment(res.Hierarchical())
			row = append(row, rep.Class.String())
		}
		t.AddRow(row...)
	}
	fmt.Print(t.String())
	fmt.Println()
	fmt.Println("Reading: interpreter rows should be flat; JIT rows warm up, and")
	fmt.Println("guard-hostile or allocation-heavy workloads may be inconsistent.")
}
