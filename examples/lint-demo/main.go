// lint-demo: demonstrate the static-analysis subsystem (DESIGN.md §9) —
// control-flow graphs, definite assignment, type-lattice inference, dead
// stores, and the determinism certificate that rides every JSON result.
//
//	go run ./examples/lint-demo
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/minipy"
	"repro/internal/vm"
	"repro/internal/workloads"
)

// defective seeds one finding of each kind the analyzer reports. Every
// error here is statically *certain*: the VM would raise on any execution
// reaching the flagged instruction.
const defective = `
def shadow(n):
    total = 0
    for i in range(n):
        total = total + i
    waste = total * 2
    return total

def broken(flag):
    if flag:
        x = 1
    y = x + 1
    return "v" - y

def impure():
    return mystery() + 1

def run():
    return shadow(10) + broken(True) + impure()
`

func main() {
	// Part 1: a clean shipped workload, end to end.
	b, _ := workloads.ByName("fib")
	rep, err := b.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	s := rep.Summarize()
	fmt.Println("Shipped workload 'fib'")
	fmt.Println("----------------------")
	fmt.Printf("functions=%d blocks=%d instructions=%d typed=%.1f%% findings=%d\n",
		s.Functions, s.Blocks, s.Instructions, s.TypedInstrPct, s.Errors+s.Warnings)
	fmt.Printf("determinism certificate: certified=%v builtins=%v\n\n",
		s.Certificate.Determinism.Certified, s.Certificate.Determinism.Builtins)

	// Its CFGs, as the golden tests render them.
	fmt.Println("Control-flow graph of fib's run():")
	for _, f := range rep.Funcs {
		if f.Name == "run" {
			fmt.Print(f.Graph.String())
		}
	}
	fmt.Println()

	// Part 1b: the same workload after the -opt 2 bytecode optimizer. The
	// analyzer decodes superinstructions (fused loads, BINARY_JUMP_IF_FALSE
	// edges), so optimized code flows through the same CFG/liveness/type
	// passes and earns the same determinism certificate.
	base, err := b.Compile()
	if err != nil {
		log.Fatal(err)
	}
	optCode, err := minipy.Optimize(base, 2, analysis.OptimizationFacts(base))
	if err != nil {
		log.Fatal(err)
	}
	repOpt, err := analysis.Analyze(optCode)
	if err != nil {
		log.Fatal(err)
	}
	so := repOpt.Summarize()
	fmt.Println("Same workload at -opt 2 (superinstructions fused)")
	fmt.Println("-------------------------------------------------")
	fmt.Printf("instructions=%d (was %d) typed=%.1f%% findings=%d certified=%v\n\n",
		so.Instructions, s.Instructions, so.TypedInstrPct,
		so.Errors+so.Warnings, so.Certificate.Determinism.Certified)

	// Part 2: a defective program — every diagnostic is positioned.
	code, err := minipy.CompileSource(defective)
	if err != nil {
		log.Fatal(err)
	}
	rep2, err := analysis.Analyze(code)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Defective program")
	fmt.Println("-----------------")
	for _, d := range rep2.Diagnostics {
		fmt.Println(d)
	}
	cert := rep2.Certificate.Determinism
	fmt.Printf("\ndeterminism certificate: certified=%v unresolved=%v\n",
		cert.Certified, cert.UnresolvedGlobals)

	// Part 3: the harness's gate — Check is what every compile path runs;
	// the first certain error rejects the program before measurement.
	if cerr := analysis.Check(code); cerr != nil {
		fmt.Printf("\nharness gate: %v\n", cerr)
	}

	// Part 4: proof-carrying optimization facts (DESIGN.md §14). The -opt 3
	// rewrites fire only where the interprocedural certificate licenses
	// them; where the abstract domains cannot decide, the optimizer must
	// refuse — the guard survives and semantics are bit-identical.
	fmt.Println("\nCertificate-gated rewrites (-opt 3)")
	fmt.Println("-----------------------------------")
	for _, prog := range []struct{ name, src string }{
		{"licensed", guardLicensed},
		{"refused", guardRefused},
	} {
		out, err := factsDemo(prog.name, prog.src)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "REFUSED: guard kept (interval cannot decide the compare)"
		if out.fired {
			verdict = "LICENSED: guard elided (interval proves the compare)"
		}
		fmt.Printf("%-9s %s — run() compares %d -> %d, result %s == %s\n",
			out.name, verdict, out.binBase, out.binOpt, out.baseResult, out.optResult)
	}
}

// guardLicensed is decidable by the interval analysis: the loop variable
// ranges over [0,59] and the threshold is the constant 100, so `i < 100`
// is provably always true and -opt 3 may elide the whole guard.
const guardLicensed = `
def run():
    total = 0
    for i in range(60):
        if i < 100:
            total = total + i
    return total
`

// guardRefused straddles the threshold: i in [0,59] against 30 is true on
// some iterations and false on others, so no license is issued and the
// compare must survive every optimization level.
const guardRefused = `
def run():
    total = 0
    for i in range(60):
        if i < 30:
            total = total + 1
    return total
`

// factsOutcome reports what the certificate licensed on one program: the
// compare count of run() before and after -opt 3 (OpBinary plus the fused
// BINARY_JUMP_IF_FALSE superinstruction, so plain -opt 2 fusion does not
// masquerade as an elision) and both observable results, which must
// always agree.
type factsOutcome struct {
	name       string
	binBase    int
	binOpt     int
	fired      bool
	baseResult string
	optResult  string
}

// factsDemo compiles src, optimizes at -opt 3 under the program's own
// certificate, and executes both versions. It is shared with the dogfood
// test, which pins that the licensed guard is elided and the refused one
// is not.
func factsDemo(name, src string) (factsOutcome, error) {
	base, err := minipy.CompileSource(src)
	if err != nil {
		return factsOutcome{}, fmt.Errorf("%s: compile: %w", name, err)
	}
	opt, err := minipy.Optimize(base, 3, analysis.OptimizationFacts(base))
	if err != nil {
		return factsOutcome{}, fmt.Errorf("%s: optimize: %w", name, err)
	}
	out := factsOutcome{name: name}
	for _, k := range base.Consts {
		if c, ok := k.(*minipy.Code); ok && c.Name == "run" {
			out.binBase = countOp(c, minipy.OpBinary) + countOp(c, minipy.OpBinaryJumpIfFalse)
		}
	}
	for _, k := range opt.Consts {
		if c, ok := k.(*minipy.Code); ok && c.Name == "run" {
			out.binOpt = countOp(c, minipy.OpBinary) + countOp(c, minipy.OpBinaryJumpIfFalse)
		}
	}
	out.fired = out.binOpt < out.binBase
	if out.baseResult, err = runProgram(base); err != nil {
		return factsOutcome{}, fmt.Errorf("%s: base: %w", name, err)
	}
	if out.optResult, err = runProgram(opt); err != nil {
		return factsOutcome{}, fmt.Errorf("%s: optimized: %w", name, err)
	}
	return out, nil
}

func countOp(c *minipy.Code, op minipy.Op) int {
	n := 0
	for _, ins := range c.Ops {
		if ins.Op == op {
			n++
		}
	}
	return n
}

func runProgram(code *minipy.Code) (string, error) {
	in := vm.New(vm.Config{Mode: vm.ModeInterp})
	if _, err := in.RunModule(code); err != nil {
		return "", err
	}
	v, err := in.CallGlobal("run")
	if err != nil {
		return "", err
	}
	return v.Repr(), nil
}
