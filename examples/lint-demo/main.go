// lint-demo: demonstrate the static-analysis subsystem (DESIGN.md §9) —
// control-flow graphs, definite assignment, type-lattice inference, dead
// stores, and the determinism certificate that rides every JSON result.
//
//	go run ./examples/lint-demo
package main

import (
	"fmt"
	"log"

	"repro/internal/analysis"
	"repro/internal/minipy"
	"repro/internal/workloads"
)

// defective seeds one finding of each kind the analyzer reports. Every
// error here is statically *certain*: the VM would raise on any execution
// reaching the flagged instruction.
const defective = `
def shadow(n):
    total = 0
    for i in range(n):
        total = total + i
    waste = total * 2
    return total

def broken(flag):
    if flag:
        x = 1
    y = x + 1
    return "v" - y

def impure():
    return mystery() + 1

def run():
    return shadow(10) + broken(True) + impure()
`

func main() {
	// Part 1: a clean shipped workload, end to end.
	b, _ := workloads.ByName("fib")
	rep, err := b.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	s := rep.Summarize()
	fmt.Println("Shipped workload 'fib'")
	fmt.Println("----------------------")
	fmt.Printf("functions=%d blocks=%d instructions=%d typed=%.1f%% findings=%d\n",
		s.Functions, s.Blocks, s.Instructions, s.TypedInstrPct, s.Errors+s.Warnings)
	fmt.Printf("determinism certificate: certified=%v builtins=%v\n\n",
		s.Determinism.Certified, s.Determinism.Builtins)

	// Its CFGs, as the golden tests render them.
	fmt.Println("Control-flow graph of fib's run():")
	for _, f := range rep.Funcs {
		if f.Name == "run" {
			fmt.Print(f.Graph.String())
		}
	}
	fmt.Println()

	// Part 1b: the same workload after the -opt 2 bytecode optimizer. The
	// analyzer decodes superinstructions (fused loads, BINARY_JUMP_IF_FALSE
	// edges), so optimized code flows through the same CFG/liveness/type
	// passes and earns the same determinism certificate.
	base, err := b.Compile()
	if err != nil {
		log.Fatal(err)
	}
	optCode, err := minipy.Optimize(base, 2, analysis.OptimizationFacts(base))
	if err != nil {
		log.Fatal(err)
	}
	repOpt, err := analysis.Analyze(optCode)
	if err != nil {
		log.Fatal(err)
	}
	so := repOpt.Summarize()
	fmt.Println("Same workload at -opt 2 (superinstructions fused)")
	fmt.Println("-------------------------------------------------")
	fmt.Printf("instructions=%d (was %d) typed=%.1f%% findings=%d certified=%v\n\n",
		so.Instructions, s.Instructions, so.TypedInstrPct,
		so.Errors+so.Warnings, so.Determinism.Certified)

	// Part 2: a defective program — every diagnostic is positioned.
	code, err := minipy.CompileSource(defective)
	if err != nil {
		log.Fatal(err)
	}
	rep2, err := analysis.Analyze(code)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Defective program")
	fmt.Println("-----------------")
	for _, d := range rep2.Diagnostics {
		fmt.Println(d)
	}
	cert := rep2.Certificate
	fmt.Printf("\ndeterminism certificate: certified=%v unresolved=%v\n",
		cert.Certified, cert.UnresolvedGlobals)

	// Part 3: the harness's gate — Check is what every compile path runs;
	// the first certain error rejects the program before measurement.
	if cerr := analysis.Check(code); cerr != nil {
		fmt.Printf("\nharness gate: %v\n", cerr)
	}
}
