package main

import "testing"

// TestFactsDemoOutcomes dogfoods the example: the two demo programs must
// keep demonstrating what the README promises. The licensed guard is
// elided at -opt 3 (strictly fewer compares than the baseline, counting
// fused BINARY_JUMP_IF_FALSE so -opt 2 fusion cannot fake an elision);
// the refused guard survives untouched; and both programs compute the
// same result before and after — the transparency invariant every
// certificate-gated rewrite rides on.
func TestFactsDemoOutcomes(t *testing.T) {
	licensed, err := factsDemo("licensed", guardLicensed)
	if err != nil {
		t.Fatal(err)
	}
	if !licensed.fired {
		t.Errorf("licensed guard was not elided: compares %d -> %d",
			licensed.binBase, licensed.binOpt)
	}
	if licensed.baseResult != licensed.optResult {
		t.Errorf("licensed elision changed semantics: %s != %s",
			licensed.baseResult, licensed.optResult)
	}
	if licensed.baseResult != "1770" { // sum of 0..59
		t.Errorf("licensed demo computes %s, want 1770", licensed.baseResult)
	}

	refused, err := factsDemo("refused", guardRefused)
	if err != nil {
		t.Fatal(err)
	}
	if refused.fired {
		t.Errorf("undecidable guard was elided: compares %d -> %d",
			refused.binBase, refused.binOpt)
	}
	if refused.baseResult != refused.optResult {
		t.Errorf("refusal path changed semantics: %s != %s",
			refused.baseResult, refused.optResult)
	}
	if refused.baseResult != "30" { // i < 30 holds on exactly 30 iterations
		t.Errorf("refused demo computes %s, want 30", refused.baseResult)
	}
}
